"""Property-style invariant audit for the simulated machine.

The structural checker itself now lives in
:mod:`repro.verify.invariants` (:func:`check_machine_invariants` is
re-exported here for compatibility); this module keeps the fault-centric
*drivers* around it:

* randomized driver-primitive sequences audited after every step
  (:func:`random_primitive_audit`), the page-management equivalent of a
  property-based state-machine test;
* full trace replays under every policy (:func:`replay_audit`), with
  and without injected faults — now via the phase-boundary
  :class:`~repro.verify.invariants.InvariantVerifier` hook, so the
  machine is also checked at every intermediate phase, not just at the
  end.

Run everything with :func:`run_audit` (also wired to the CLI as
``repro-oasis faults --audit`` and to ``make verify-faults``).

Import explicitly (``from repro.faults import audit``): the package
``__init__`` does not pull this module in, because it imports the wider
simulator and would otherwise create an import cycle with
:mod:`repro.sim.machine`.
"""

from __future__ import annotations

import random

from repro.verify.invariants import check_machine_invariants

__all__ = [
    "AUDIT_POLICIES",
    "check_machine_invariants",
    "random_primitive_audit",
    "replay_audit",
    "run_audit",
]

#: Policies exercised by the audit.  ``ideal`` is excluded by design:
#: its incoherent page tables intentionally violate the single-writer
#: and owner-in-copy-set invariants.
AUDIT_POLICIES = (
    "on_touch",
    "access_counter",
    "duplication",
    "grit",
    "oasis",
)


# -- randomized primitive sequences ----------------------------------------


def _tiny_machine(policy: str, *, n_gpus: int = 4, n_pages: int = 24,
                  oversubscription: float | None = None, fault_plan=None):
    """A small machine with a synthetic trace, for direct driver abuse."""
    from repro import make_policy
    from repro.config import baseline_config
    from repro.sim.machine import Machine
    from repro.workloads.base import TraceBuilder

    config = baseline_config(
        n_gpus=n_gpus,
        oversubscription=oversubscription,
        fault_plan=fault_plan,
    )
    builder = TraceBuilder("audit", n_gpus, config.page_size, seed=0, burst=4)
    obj = builder.alloc("data", n_pages * config.page_size)
    builder.begin_phase("warm", explicit=True)
    for page in range(n_pages):
        builder.emit(page % n_gpus, obj, page, False, 1)
    builder.end_phase()
    trace = builder.build()
    return Machine(config, trace, make_policy(policy))


def random_primitive_audit(
    seed: int = 0,
    *,
    policy: str = "on_touch",
    steps: int = 300,
    n_gpus: int = 4,
    n_pages: int = 24,
    oversubscription: float | None = None,
    fault_plan=None,
) -> list[str]:
    """Drive random valid driver primitives; audit after every step.

    Returns the violations found (with the step that triggered them);
    empty means the machine stayed consistent throughout.
    """
    machine = _tiny_machine(
        policy,
        n_gpus=n_gpus,
        n_pages=n_pages,
        oversubscription=oversubscription,
        fault_plan=fault_plan,
    )
    if machine.injector is not None:
        # Activate phase-0 events so retirements are live during the abuse.
        machine.injector.start_phase(0, 0.0, machine.driver)
    driver = machine.driver
    pt = machine.page_tables
    rng = random.Random(seed)
    pages = list(
        range(machine.trace.first_page, machine.trace.first_page + n_pages)
    )
    ops = ("migrate", "duplicate", "collapse", "map_remote", "evict_from",
           "evict")
    violations: list[str] = []
    for step in range(steps):
        op = rng.choice(ops)
        gpu = rng.randrange(n_gpus)
        page = rng.choice(pages)
        if op == "migrate":
            driver.migrate(gpu, page)
        elif op == "duplicate":
            driver.duplicate(gpu, page)
        elif op == "collapse":
            driver.collapse(gpu, page)
        elif op == "map_remote":
            if not pt.has_copy(gpu, page):
                driver.map_remote(gpu, page)
        elif op == "evict_from":
            if pt.has_copy(gpu, page):
                driver.evict_from(gpu, page)
        else:
            driver.evict(page)
        found = check_machine_invariants(machine)
        if found:
            violations.extend(
                f"step {step} ({op} gpu={gpu} page={page}): {v}"
                for v in found
            )
            break
    return violations


# -- full-replay audits ----------------------------------------------------


def _two_phase_trace(config, seed: int = 0, n_pages: int = 48):
    """A synthetic two-phase trace so phase-1 fault events activate."""
    from repro.workloads.base import TraceBuilder

    builder = TraceBuilder(
        "audit2p", config.n_gpus, config.page_size, seed=seed, burst=4
    )
    obj = builder.alloc("data", n_pages * config.page_size)
    rng = random.Random(seed)
    for phase in range(2):
        builder.begin_phase(f"phase{phase}", explicit=(phase == 0))
        for _ in range(n_pages * 4):
            gpu = rng.randrange(config.n_gpus)
            page = rng.randrange(n_pages)
            builder.emit(gpu, obj, page, rng.random() < 0.3, 1)
        builder.end_phase()
    return builder.build()


def replay_audit(
    policy: str,
    seed: int = 0,
    fault_plan=None,
    oversubscription: float | None = None,
) -> list[str]:
    """Replay a synthetic trace under ``policy`` and audit the machine.

    Runs with the phase-boundary
    :class:`~repro.verify.invariants.InvariantVerifier` attached, so
    both structural invariants *and* counter laws are checked at every
    phase boundary, not just once after the run.
    """
    from repro import make_policy
    from repro.config import baseline_config
    from repro.sim.machine import Machine
    from repro.verify.invariants import InvariantVerifier

    config = baseline_config(
        fault_plan=fault_plan, oversubscription=oversubscription
    )
    trace = _two_phase_trace(config, seed=seed)
    verifier = InvariantVerifier(strict=False)
    Machine(config, trace, make_policy(policy), verifier=verifier).run()
    return list(verifier.violations)


def default_fault_plans() -> list:
    """The fault plans the audit exercises (None = healthy)."""
    from repro.faults import (
        FaultPlan,
        LinkFault,
        MigrationFlake,
        PageRetirement,
    )

    return [
        None,
        FaultPlan(link_faults=(LinkFault(a=0, b=1, phase=1),)),
        FaultPlan(
            link_faults=(LinkFault(a=0, b=1, phase=1, bandwidth_factor=0.25),),
            migration_flakes=(MigrationFlake(rate=0.2, phase=1),),
        ),
        FaultPlan(
            page_retirements=tuple(
                PageRetirement(gpu=0, page=page, phase=1)
                for page in range(8)
            ),
            migration_flakes=(MigrationFlake(rate=0.1, phase=0),),
        ),
    ]


def run_audit(
    policies=AUDIT_POLICIES,
    seeds=(0, 1),
    plans=None,
    steps: int = 200,
) -> dict:
    """Run the full audit matrix; returns a report dict.

    ``report["violations"]`` is empty when every check passed; each
    entry says which scenario broke and how.
    """
    from repro.faults.plan import FaultPlan

    if plans is None:
        plans = default_fault_plans()
    checks = 0
    violations: list[str] = []

    def plan_label(plan) -> str:
        if plan is None:
            return "healthy"
        assert isinstance(plan, FaultPlan)
        return f"plan:{plan.digest()}"

    for seed in seeds:
        for plan in plans:
            # Retirement plans reference trace-relative pages that the
            # primitive audit's tiny trace may not cover; shift them onto
            # the actual first page at build time instead of skipping.
            shifted = _shift_plan(plan)
            found = random_primitive_audit(
                seed, steps=steps, fault_plan=shifted
            )
            checks += 1
            violations.extend(
                f"primitives seed={seed} {plan_label(plan)}: {v}"
                for v in found
            )
            for policy in policies:
                found = replay_audit(policy, seed=seed, fault_plan=shifted)
                checks += 1
                violations.extend(
                    f"replay {policy} seed={seed} {plan_label(plan)}: {v}"
                    for v in found
                )
    # Oversubscribed healthy replay: capacity bookkeeping under pressure.
    for policy in policies:
        found = replay_audit(policy, seed=0, oversubscription=1.5)
        checks += 1
        violations.extend(
            f"replay {policy} oversub=1.5: {v}" for v in found
        )
    return {"checks": checks, "violations": violations}


def _shift_plan(plan):
    """Rebase a plan's page retirements onto the audit traces' pages.

    Audit traces allocate their object at a fixed first page; plans in
    :func:`default_fault_plans` give retirements as small offsets, which
    this helper turns into real page numbers.
    """
    if plan is None or not plan.page_retirements:
        return plan
    from dataclasses import replace

    from repro.workloads.base import TraceBuilder

    first = TraceBuilder.FIRST_PAGE if hasattr(TraceBuilder, "FIRST_PAGE") else 0
    if first == 0:
        # Discover the base the builder actually uses.
        from repro.config import baseline_config

        config = baseline_config()
        builder = TraceBuilder("probe", 1, config.page_size, seed=0)
        obj = builder.alloc("probe", config.page_size)
        first = obj.first_page
    return replace(
        plan,
        page_retirements=tuple(
            replace(r, page=first + r.page) for r in plan.page_retirements
        ),
    )
