"""Declarative fault plans for the simulated multi-GPU system.

A :class:`FaultPlan` is a frozen, hashable description of every fault the
simulator should inject into one run: link degradations/severs, page
(frame) retirements, and transient migration failures.  Because the plan
is part of :class:`~repro.config.SystemConfig` (and therefore of the
result cache key), two runs differing only in their fault plan can never
read each other's cached results.

The plan is *declarative*: it never touches simulator state itself.  The
runtime counterpart, :class:`repro.faults.inject.FaultInjector`, applies
events at phase boundaries and answers per-operation queries from the UVM
driver.  Everything is deterministic — transient failures draw from a
``random.Random(seed)`` stream that is consumed in replay order, so the
same (config, trace, policy, plan) always produces the same injected
faults.

Device ids follow the simulator convention: GPUs are ``0..n_gpus-1`` and
``-1`` is the host CPU.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

#: Host device id (mirrors ``repro.config.HOST`` without importing it —
#: this module must stay import-free so ``config`` can reference plans).
_HOST = -1


def _freeze(value):
    """Normalize lists (e.g. parsed JSON) into hashable tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class LinkFault:
    """Degrade or sever the link between devices ``a`` and ``b``.

    Activates at the start of phase ``phase``.  ``bandwidth_factor``
    scales the link's bandwidth: ``0.0`` (the default) severs the link
    outright, forcing transfers to reroute through an intermediate
    device or fail.
    """

    a: int
    b: int
    phase: int = 0
    bandwidth_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("a link joins two distinct devices")
        if not 0.0 <= self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in [0, 1]")
        if self.phase < 0:
            raise ValueError("phase must be non-negative")

    @property
    def severed(self) -> bool:
        return self.bandwidth_factor == 0.0


@dataclass(frozen=True)
class PageRetirement:
    """Retire ``page``'s frame on ``gpu`` (ECC-flagged) at ``phase``.

    From that phase on the GPU can never hold the page's data again: any
    resident copy is relocated when the retirement activates, and later
    migrations/duplications targeting the retired frame degrade to a
    zero-copy remote mapping.
    """

    gpu: int
    page: int
    phase: int = 0

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise ValueError("only GPU frames can be retired")
        if self.phase < 0:
            raise ValueError("phase must be non-negative")


@dataclass(frozen=True)
class MigrationFlake:
    """Transient migration failures from ``phase`` on.

    Each affected migration attempt independently fails with probability
    ``rate`` (drawn from the plan's seeded stream).  ``gpus`` restricts
    the flake to migrations *into* the listed GPUs; empty means all.
    """

    rate: float
    phase: int = 0
    gpus: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.phase < 0:
            raise ValueError("phase must be non-negative")
        object.__setattr__(self, "gpus", _freeze(self.gpus))

    def applies_to(self, gpu: int) -> bool:
        return not self.gpus or gpu in self.gpus


@dataclass(frozen=True)
class FaultPlan:
    """Every fault injected into one simulation run.

    Frozen and hashable so it can ride inside ``SystemConfig`` and the
    two-level result cache key.  An empty plan (the default) is inert:
    the machine skips injector construction entirely and the run is
    bit-identical to a plan-free run.
    """

    link_faults: tuple[LinkFault, ...] = ()
    page_retirements: tuple[PageRetirement, ...] = ()
    migration_flakes: tuple[MigrationFlake, ...] = ()
    #: Seed of the deterministic stream transient failures draw from.
    seed: int = 0
    #: Migration attempts beyond the first before degrading to a
    #: zero-copy remote mapping.
    max_retries: int = 3
    #: Simulated backoff before retry ``k`` is ``backoff_base_ns * 2**k``.
    backoff_base_ns: float = 1_000.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "link_faults", _freeze(self.link_faults))
        object.__setattr__(
            self, "page_retirements", _freeze(self.page_retirements)
        )
        object.__setattr__(
            self, "migration_flakes", _freeze(self.migration_flakes)
        )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_ns < 0:
            raise ValueError("backoff_base_ns must be non-negative")

    # -- introspection -----------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.link_faults or self.page_retirements or self.migration_flakes
        )

    @property
    def events(self) -> tuple:
        """All scheduled events, in declaration order."""
        return (
            *self.link_faults,
            *self.page_retirements,
            *self.migration_flakes,
        )

    @property
    def first_fault_phase(self) -> int | None:
        """Earliest phase any event activates, or None when empty."""
        phases = [event.phase for event in self.events]
        return min(phases) if phases else None

    def digest(self) -> str:
        """Short content hash identifying the plan (for reports/logs)."""
        blob = json.dumps(self.to_spec(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    # -- (de)serialization --------------------------------------------------

    def to_spec(self) -> dict:
        """JSON-serializable spec; inverse of :meth:`from_spec`."""
        return {
            "link_faults": [
                {
                    "a": f.a,
                    "b": f.b,
                    "phase": f.phase,
                    "bandwidth_factor": f.bandwidth_factor,
                }
                for f in self.link_faults
            ],
            "page_retirements": [
                {"gpu": r.gpu, "page": r.page, "phase": r.phase}
                for r in self.page_retirements
            ],
            "migration_flakes": [
                {"rate": m.rate, "phase": m.phase, "gpus": list(m.gpus)}
                for m in self.migration_flakes
            ],
            "seed": self.seed,
            "max_retries": self.max_retries,
            "backoff_base_ns": self.backoff_base_ns,
        }

    @classmethod
    def from_spec(cls, spec: dict | str) -> "FaultPlan":
        """Build a plan from a spec dict or its JSON encoding."""
        if isinstance(spec, str):
            spec = json.loads(spec)
        if not isinstance(spec, dict):
            raise ValueError("fault-plan spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(
            link_faults=tuple(
                LinkFault(**f) for f in spec.get("link_faults", ())
            ),
            page_retirements=tuple(
                PageRetirement(**r) for r in spec.get("page_retirements", ())
            ),
            migration_flakes=tuple(
                MigrationFlake(**m) for m in spec.get("migration_flakes", ())
            ),
            seed=spec.get("seed", 0),
            max_retries=spec.get("max_retries", 3),
            backoff_base_ns=spec.get("backoff_base_ns", 1_000.0),
        )
