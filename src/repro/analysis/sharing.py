"""Sharing-degree and traffic-concentration analyses.

Beyond the paper's private/shared dichotomy, these helpers quantify *how*
shared the shared pages are — the sharing degree distribution determines
how expensive write-collapses are (per extra copy) and how much
duplication amplifies capacity pressure.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import ObjectDef, Trace


def sharing_degree_histogram(
    trace: Trace, phases: slice | list[int] | None = None
) -> dict[int, int]:
    """Number of touched pages per sharing degree (distinct GPUs).

    Returns a mapping ``degree -> page count`` for degrees >= 1.
    """
    masks = _gpu_masks(trace, phases)
    degrees = _popcount(masks)
    touched = degrees > 0
    values, counts = np.unique(degrees[touched], return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def mean_sharing_degree(
    trace: Trace, phases: slice | list[int] | None = None
) -> float:
    """Average number of GPUs touching each touched page."""
    masks = _gpu_masks(trace, phases)
    degrees = _popcount(masks)
    touched = degrees > 0
    if not touched.any():
        return 0.0
    return float(degrees[touched].mean())


def object_sharing_degree(
    trace: Trace, obj: ObjectDef, phases: slice | list[int] | None = None
) -> float:
    """Average sharing degree of one object's touched pages."""
    masks = _gpu_masks(trace, phases)
    start = obj.first_page - trace.first_page
    degrees = _popcount(masks[start:start + obj.n_pages])
    touched = degrees > 0
    if not touched.any():
        return 0.0
    return float(degrees[touched].mean())


def access_concentration(trace: Trace, top_fraction: float = 0.1) -> float:
    """Fraction of dynamic accesses landing on the hottest pages.

    ``top_fraction`` of the touched pages (by access weight) are the "hot"
    set; the return value is the share of all accesses they receive —
    a simple skewness measure for random-pattern apps.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    weights = np.zeros(trace.n_pages, dtype=np.float64)
    for phase in trace.phases:
        np.add.at(weights, phase.page - trace.first_page, phase.weight)
    touched = weights[weights > 0]
    if touched.size == 0:
        return 0.0
    touched.sort()
    n_hot = max(1, int(len(touched) * top_fraction))
    return float(touched[-n_hot:].sum() / touched.sum())


def phase_access_summary(trace: Trace) -> list[dict]:
    """Per-phase record/access/write statistics (profiling view)."""
    out = []
    for phase in trace.phases:
        weights = phase.weight
        writes = phase.write.astype(bool)
        total = int(weights.sum()) if len(weights) else 0
        write_accesses = int(weights[writes].sum()) if len(weights) else 0
        out.append({
            "name": phase.name,
            "explicit": phase.explicit,
            "records": len(phase),
            "accesses": total,
            "write_fraction": (write_accesses / total) if total else 0.0,
            "unique_pages": int(np.unique(phase.page).size) if len(phase) else 0,
            "gpus": int(np.unique(phase.gpu).size) if len(phase) else 0,
        })
    return out


def _gpu_masks(
    trace: Trace, phases: slice | list[int] | None
) -> np.ndarray:
    masks = np.zeros(trace.n_pages, dtype=np.int64)
    if phases is None:
        selected = trace.phases
    elif isinstance(phases, slice):
        selected = trace.phases[phases]
    else:
        selected = [trace.phases[i] for i in phases]
    for phase in selected:
        bits = np.left_shift(np.int64(1), phase.gpu.astype(np.int64))
        np.bitwise_or.at(masks, phase.page - trace.first_page, bits)
    return masks


def _popcount(masks: np.ndarray) -> np.ndarray:
    counts = np.zeros_like(masks)
    work = masks.copy()
    while work.any():
        counts += work & 1
        work >>= 1
    return counts
