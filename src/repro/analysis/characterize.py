"""Figure-specific characterizations (Figs. 3, 4, 5, 7).

These helpers turn a trace into exactly the data series the paper's
characterization figures plot.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.classify import (
    READ_ONLY,
    RW_MIX,
    UNTOUCHED,
    WRITE_ONLY,
)
from repro.workloads.base import ObjectDef, Trace


def object_size_distribution(trace: Trace) -> dict[str, int]:
    """Object sizes in pages, keyed by object name (Fig. 3 input)."""
    return {obj.name: obj.n_pages for obj in trace.objects}


def size_histogram(
    traces: list[Trace], buckets: tuple[int, ...] = (1, 4, 16, 64, 256, 1024)
) -> dict[str, int]:
    """Histogram of object sizes (pages) across many traces (Fig. 3).

    Bucket labels are ``<=N`` for each bound plus a final ``>last``.
    """
    counts = {f"<={b}": 0 for b in buckets}
    counts[f">{buckets[-1]}"] = 0
    for trace in traces:
        for obj in trace.objects:
            for bound in buckets:
                if obj.n_pages <= bound:
                    counts[f"<={bound}"] += 1
                    break
            else:
                counts[f">{buckets[-1]}"] += 1
    return counts


def access_share_by_object(trace: Trace) -> dict[str, float]:
    """Fraction of dynamic accesses going to each object (Fig. 5(b))."""
    totals = np.zeros(len(trace.objects), dtype=np.float64)
    bounds = np.array(
        [obj.first_page for obj in trace.objects] + [trace.first_page + trace.n_pages]
    )
    for phase in trace.phases:
        idx = np.searchsorted(bounds, phase.page, side="right") - 1
        np.add.at(totals, idx, phase.weight)
    total = totals.sum()
    if total == 0:
        return {obj.name: 0.0 for obj in trace.objects}
    return {
        obj.name: float(totals[i] / total) for i, obj in enumerate(trace.objects)
    }


def pages_by_object(trace: Trace) -> dict[str, float]:
    """Fraction of the footprint's pages belonging to each object."""
    total = sum(obj.n_pages for obj in trace.objects)
    return {obj.name: obj.n_pages / total for obj in trace.objects}


def page_pattern_timeline(
    trace: Trace,
    n_intervals: int = 8,
    obj: ObjectDef | None = None,
    page_step: int = 1,
) -> np.ndarray:
    """Read/write pattern of each page over execution time (Figs. 4 and 7).

    The trace's records are split into ``n_intervals`` equal spans of the
    merged record stream; each cell classifies one page in one interval as
    read-only / write-only / rw-mix / untouched.

    Args:
        trace: trace to characterize.
        n_intervals: number of time slices (the paper uses 8 for Fig. 4;
            per-iteration views pass one interval per phase).
        obj: restrict to one object's pages (None = whole trace).
        page_step: sample every Nth page to keep the grid small.

    Returns:
        Array of shape ``(n_pages_sampled, n_intervals)`` of labels.
    """
    if n_intervals < 1:
        raise ValueError("need at least one interval")
    first = obj.first_page if obj else trace.first_page
    count = obj.n_pages if obj else trace.n_pages
    pages = range(first, first + count, page_step)
    page_index = {p: i for i, p in enumerate(pages)}
    grid_reads = np.zeros((len(page_index), n_intervals), dtype=bool)
    grid_writes = np.zeros((len(page_index), n_intervals), dtype=bool)

    total_records = trace.total_records
    if total_records == 0:
        return np.full((len(page_index), n_intervals), UNTOUCHED, dtype=object)
    seen = 0
    for phase in trace.phases:
        n = len(phase)
        if n == 0:
            continue
        positions = seen + np.arange(n)
        intervals = np.minimum(
            (positions * n_intervals) // total_records, n_intervals - 1
        )
        seen += n
        for page_arr, write_arr, interval_arr in (
            (phase.page, phase.write, intervals),
        ):
            for page, is_write, interval in zip(
                page_arr.tolist(), write_arr.tolist(), interval_arr.tolist()
            ):
                idx = page_index.get(page)
                if idx is None:
                    continue
                if is_write:
                    grid_writes[idx, interval] = True
                else:
                    grid_reads[idx, interval] = True

    labels = np.full((len(page_index), n_intervals), UNTOUCHED, dtype=object)
    labels[grid_reads & ~grid_writes] = READ_ONLY
    labels[~grid_reads & grid_writes] = WRITE_ONLY
    labels[grid_reads & grid_writes] = RW_MIX
    return labels


def phase_page_patterns(
    trace: Trace, obj: ObjectDef, page_step: int = 1
) -> np.ndarray:
    """Per-phase page patterns for one object (the Fig. 7 iteration grid).

    Returns an array of shape ``(n_pages_sampled, n_phases)``.
    """
    pages = range(obj.first_page, obj.first_page + obj.n_pages, page_step)
    page_index = {p: i for i, p in enumerate(pages)}
    n_phases = len(trace.phases)
    reads = np.zeros((len(page_index), n_phases), dtype=bool)
    writes = np.zeros((len(page_index), n_phases), dtype=bool)
    for phase_no, phase in enumerate(trace.phases):
        for page, is_write in zip(phase.page.tolist(), phase.write.tolist()):
            idx = page_index.get(page)
            if idx is None:
                continue
            if is_write:
                writes[idx, phase_no] = True
            else:
                reads[idx, phase_no] = True
    labels = np.full((len(page_index), n_phases), UNTOUCHED, dtype=object)
    labels[reads & ~writes] = READ_ONLY
    labels[~reads & writes] = WRITE_ONLY
    labels[reads & writes] = RW_MIX
    return labels
