"""Access-pattern characterization (Section IV of the paper).

Implements the paper's terminology on top of traces:

* per-page patterns — private/shared x read-only/write-only/rw-mix, over
  any window of phases;
* object patterns — the 90% predominance rule, 'mix' categories, and
  non-uniform object/app detection (Observation 2);
* the figure-specific characterizations: object sizes (Fig. 3), page/time
  pattern grids (Figs. 4 and 7), per-object access shares (Fig. 5),
  per-phase object patterns (Fig. 6), and page-type percentages under
  different page sizes (Fig. 20).
"""

from repro.analysis.classify import (
    PageClassification,
    classify_object,
    classify_pages,
    is_non_uniform_app,
    non_uniform_objects,
    object_pattern_by_phase,
    page_type_percentages,
)
from repro.analysis.sharing import (
    access_concentration,
    mean_sharing_degree,
    object_sharing_degree,
    phase_access_summary,
    sharing_degree_histogram,
)
from repro.analysis.characterize import (
    access_share_by_object,
    object_size_distribution,
    page_pattern_timeline,
    pages_by_object,
    phase_page_patterns,
    size_histogram,
)

__all__ = [
    "PageClassification",
    "access_concentration",
    "mean_sharing_degree",
    "object_sharing_degree",
    "phase_access_summary",
    "sharing_degree_histogram",
    "access_share_by_object",
    "classify_object",
    "classify_pages",
    "is_non_uniform_app",
    "non_uniform_objects",
    "object_pattern_by_phase",
    "object_size_distribution",
    "page_pattern_timeline",
    "page_type_percentages",
    "pages_by_object",
    "phase_page_patterns",
    "size_histogram",
]
