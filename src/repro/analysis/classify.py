"""Page and object pattern classification (Section IV-B terminology).

Definitions implemented verbatim from the paper:

* **private page** — accessed exclusively by one GPU during the window;
* **shared page** — accessed by more than one GPU during the window;
* **read-only / write-only / rw-mix** — only read, only written, or both;
* **object pattern** — if >= 90% of an object's touched pages agree on a
  dimension, the object takes that label; otherwise it is a ``mix`` in
  that dimension;
* **non-uniform object** — has at least one page whose pattern differs
  from the object's dominant pattern in *both* dimensions;
* **non-uniform app** — has at least one non-uniform object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import ObjectDef, Trace

#: Predominance threshold for classifying an object (Section IV-B).
PREDOMINANCE = 0.90

UNTOUCHED = "untouched"
PRIVATE = "private"
SHARED = "shared"
READ_ONLY = "read-only"
WRITE_ONLY = "write-only"
RW_MIX = "rw-mix"
MIX = "mix"


@dataclass
class PageClassification:
    """Per-page access summary over a window of phases.

    Arrays are indexed by page offset from ``first_page``.
    """

    first_page: int
    reader_mask: np.ndarray
    writer_mask: np.ndarray

    @property
    def n_pages(self) -> int:
        return len(self.reader_mask)

    def _idx(self, page: int) -> int:
        return page - self.first_page

    def touched(self, page: int) -> bool:
        idx = self._idx(page)
        return bool(self.reader_mask[idx] | self.writer_mask[idx])

    def sharing_of(self, page: int) -> str:
        """``private``, ``shared`` or ``untouched``."""
        idx = self._idx(page)
        mask = int(self.reader_mask[idx] | self.writer_mask[idx])
        if mask == 0:
            return UNTOUCHED
        return SHARED if mask & (mask - 1) else PRIVATE

    def rw_of(self, page: int) -> str:
        """``read-only``, ``write-only``, ``rw-mix`` or ``untouched``."""
        idx = self._idx(page)
        reads = bool(self.reader_mask[idx])
        writes = bool(self.writer_mask[idx])
        if reads and writes:
            return RW_MIX
        if reads:
            return READ_ONLY
        if writes:
            return WRITE_ONLY
        return UNTOUCHED

    def pattern_of(self, page: int) -> tuple[str, str]:
        """``(sharing, rw)`` of one page."""
        return self.sharing_of(page), self.rw_of(page)

    # -- bulk views ---------------------------------------------------------

    def sharing_labels(self) -> np.ndarray:
        """Vector of sharing labels for every page."""
        union = self.reader_mask | self.writer_mask
        out = np.full(self.n_pages, UNTOUCHED, dtype=object)
        touched = union != 0
        multi = (union & (union - 1)) != 0
        out[touched & ~multi] = PRIVATE
        out[multi] = SHARED
        return out

    def rw_labels(self) -> np.ndarray:
        """Vector of read/write labels for every page."""
        reads = self.reader_mask != 0
        writes = self.writer_mask != 0
        out = np.full(self.n_pages, UNTOUCHED, dtype=object)
        out[reads & ~writes] = READ_ONLY
        out[~reads & writes] = WRITE_ONLY
        out[reads & writes] = RW_MIX
        return out


def classify_pages(
    trace: Trace, phases: slice | list[int] | None = None
) -> PageClassification:
    """Classify every page of a trace over the chosen phase window.

    Args:
        trace: the trace to analyze.
        phases: which phases to include — a slice, a list of indices, or
            None for the whole execution.
    """
    reader = np.zeros(trace.n_pages, dtype=np.int64)
    writer = np.zeros(trace.n_pages, dtype=np.int64)
    if phases is None:
        selected = trace.phases
    elif isinstance(phases, slice):
        selected = trace.phases[phases]
    else:
        selected = [trace.phases[i] for i in phases]
    for phase in selected:
        offsets = phase.page - trace.first_page
        bits = np.left_shift(np.int64(1), phase.gpu.astype(np.int64))
        is_write = phase.write.astype(bool)
        np.bitwise_or.at(writer, offsets[is_write], bits[is_write])
        np.bitwise_or.at(reader, offsets[~is_write], bits[~is_write])
    return PageClassification(trace.first_page, reader, writer)


@dataclass(frozen=True)
class ObjectPattern:
    """An object's classification over a window."""

    name: str
    sharing: str
    rw: str
    touched_pages: int
    n_pages: int
    #: Fraction of touched pages agreeing with the dominant sharing label.
    sharing_agreement: float
    #: Fraction of touched pages agreeing with the dominant rw label.
    rw_agreement: float

    @property
    def label(self) -> str:
        """Combined label, e.g. ``shared-read-only`` (Section IV-B)."""
        return f"{self.sharing}-{self.rw}"

    @property
    def is_non_uniform(self) -> bool:
        """True if some page deviates in both dimensions (Section IV-B)."""
        return self.sharing_agreement < 1.0 and self.rw_agreement < 1.0


def classify_object(
    trace: Trace,
    obj: ObjectDef,
    classification: PageClassification | None = None,
    phases: slice | list[int] | None = None,
) -> ObjectPattern:
    """Classify one object with the 90% predominance rule."""
    cls = classification or classify_pages(trace, phases)
    start = obj.first_page - trace.first_page
    stop = start + obj.n_pages
    sharing = cls.sharing_labels()[start:stop]
    rw = cls.rw_labels()[start:stop]
    touched = sharing != UNTOUCHED
    n_touched = int(touched.sum())
    if n_touched == 0:
        return ObjectPattern(obj.name, UNTOUCHED, UNTOUCHED, 0, obj.n_pages,
                             1.0, 1.0)
    share_label, share_frac = _dominant(sharing[touched])
    rw_label, rw_frac = _dominant(rw[touched])
    if share_frac < PREDOMINANCE:
        share_label = MIX
    if rw_frac < PREDOMINANCE:
        rw_label = RW_MIX if RW_MIX in rw[touched] else MIX
    return ObjectPattern(
        name=obj.name,
        sharing=share_label,
        rw=rw_label,
        touched_pages=n_touched,
        n_pages=obj.n_pages,
        sharing_agreement=share_frac,
        rw_agreement=rw_frac,
    )


def _dominant(labels: np.ndarray) -> tuple[str, float]:
    values, counts = np.unique(labels, return_counts=True)
    best = int(counts.argmax())
    return str(values[best]), float(counts[best] / counts.sum())


def object_pattern_by_phase(
    trace: Trace, obj: ObjectDef
) -> list[ObjectPattern]:
    """The object's pattern in each phase (the Fig. 6 per-phase view)."""
    return [
        classify_object(trace, obj, phases=[i])
        for i in range(len(trace.phases))
    ]


def non_uniform_objects(
    trace: Trace, phases: slice | list[int] | None = None
) -> list[str]:
    """Names of objects with at least one doubly-deviating page."""
    cls = classify_pages(trace, phases)
    return [
        obj.name
        for obj in trace.objects
        if classify_object(trace, obj, cls).is_non_uniform
    ]


def is_non_uniform_app(trace: Trace) -> bool:
    """True if any object is non-uniform over the whole execution."""
    return bool(non_uniform_objects(trace))


def page_type_percentages(
    trace: Trace, phases: slice | list[int] | None = None
) -> dict[str, float]:
    """Fractions of touched pages per category (the Fig. 20 breakdown).

    Returns a dict with ``read-only`` / ``write-only`` / ``rw-mix`` and
    ``private`` / ``shared`` fractions (each family sums to 1).
    """
    cls = classify_pages(trace, phases)
    sharing = cls.sharing_labels()
    rw = cls.rw_labels()
    touched = sharing != UNTOUCHED
    total = int(touched.sum())
    if total == 0:
        return {}
    out = {}
    for label in (READ_ONLY, WRITE_ONLY, RW_MIX):
        out[label] = float((rw[touched] == label).sum() / total)
    for label in (PRIVATE, SHARED):
        out[label] = float((sharing[touched] == label).sum() / total)
    return out
