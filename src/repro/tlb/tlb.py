"""Set-associative LRU TLB."""

from __future__ import annotations

from repro.config import TLBConfig


class SetAssociativeTLB:
    """One TLB level: set-associative, LRU replacement.

    Entries are keyed by virtual page number.  Each set is an
    insertion-ordered dict; re-inserting on hit keeps the first key the LRU
    victim.
    """

    #: Class-level default so instances restored from pre-``lookups``
    #: snapshots still resolve the attribute (to a zero baseline).
    lookups = 0

    def __init__(self, config: TLBConfig) -> None:
        self._config = config
        # Geometry cached as plain ints: these sit on the simulator's
        # hottest path, and dataclass property access is measurably slow.
        self._n_sets = config.sets
        self._ways = config.ways
        self._sets: list[dict[int, None]] = [dict() for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0
        self.lookups = 0
        self.invalidations = 0

    @property
    def config(self) -> TLBConfig:
        return self._config

    def _set_of(self, page: int) -> dict[int, None]:
        return self._sets[page % self._n_sets]

    def lookup(self, page: int) -> bool:
        """Probe for ``page``; updates LRU order and hit/miss stats."""
        self.lookups += 1
        entries = self._sets[page % self._n_sets]
        if page in entries:
            del entries[page]
            entries[page] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, page: int) -> int | None:
        """Insert a translation; returns the evicted page, if any."""
        entries = self._sets[page % self._n_sets]
        victim = None
        if page in entries:
            del entries[page]
        elif len(entries) >= self._ways:
            victim = next(iter(entries))
            del entries[victim]
        entries[page] = None
        return victim

    def invalidate(self, page: int) -> bool:
        """Shoot down one translation; returns True if it was present."""
        entries = self._set_of(page)
        if page in entries:
            del entries[page]
            self.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop every translation (full shootdown)."""
        for entries in self._sets:
            entries.clear()

    @property
    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(len(s) for s in self._sets)

    def contains(self, page: int) -> bool:
        """Non-mutating presence probe (no LRU or stat updates)."""
        return page in self._set_of(page)

    def cached_pages(self) -> set[int]:
        """Every page with a valid entry (for invariant audits)."""
        pages: set[int] = set()
        for entries in self._sets:
            pages.update(entries)
        return pages
