"""Two-level TLB hierarchy for one GPU."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LatencyModel, TLBConfig
from repro.tlb.tlb import SetAssociativeTLB


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of a translation attempt.

    Attributes:
        level: ``"l1"``, ``"l2"`` or ``"walk"`` — where the translation was
            found (``"walk"`` means both TLBs missed and the GMMU walked the
            local page table).
        cost_ns: lookup latency accumulated on the way.
    """

    level: str
    cost_ns: float

    @property
    def l2_miss(self) -> bool:
        """True when the request reached the GMMU page-table walker."""
        return self.level == "walk"


class TLBHierarchy:
    """Per-GPU L1 + L2 TLB with inclusive fills and shootdowns."""

    def __init__(
        self,
        l1_config: TLBConfig,
        l2_config: TLBConfig,
        latency: LatencyModel,
    ) -> None:
        self.l1 = SetAssociativeTLB(l1_config)
        self.l2 = SetAssociativeTLB(l2_config)
        self._latency = latency
        self._l1_cost = latency.l1_tlb_hit_ns
        self._l2_cost = latency.l1_tlb_hit_ns + latency.l2_tlb_ns
        self._walk_cost = self._l2_cost + latency.walk_ns

    def translate(self, page: int) -> TranslationResult:
        """Look up ``page``; on misses, walk and fill both levels.

        The caller is responsible for only translating pages whose PTE is
        valid — a faulting access never installs a TLB entry.
        """
        if self.l1.lookup(page):
            return TranslationResult("l1", self._l1_cost)
        if self.l2.lookup(page):
            self.l1.fill(page)
            return TranslationResult("l2", self._l2_cost)
        self.l2.fill(page)
        self.l1.fill(page)
        return TranslationResult("walk", self._walk_cost)

    def translate_fast(self, page: int) -> tuple[float, bool]:
        """Hot-path translation: ``(cost_ns, l2_missed)`` without the
        result-object allocation."""
        if self.l1.lookup(page):
            return self._l1_cost, False
        if self.l2.lookup(page):
            self.l1.fill(page)
            return self._l2_cost, False
        self.l2.fill(page)
        self.l1.fill(page)
        return self._walk_cost, True

    def translate_run(self, pages) -> tuple[list[float], list[int]]:
        """Translate a run of already-mapped pages in one call.

        Bit- and state-identical to calling :meth:`translate_fast` once per
        page — the LRU dicts, hit/miss counters and per-record costs come
        out exactly the same — but with the per-level lookup/fill logic
        inlined into one tight loop, which is what makes the vectorized
        replay fast path worthwhile for TLB-bound runs.

        Args:
            pages: sequence of python ints (convert numpy slices with
                ``.tolist()`` so dict keys stay plain ints).

        Returns:
            ``(costs, walk_positions)``: per-record lookup cost in ns, and
            the indices within ``pages`` that missed both levels and walked
            the page table (the caller charges those to policy stats).
        """
        l1 = self.l1
        l2 = self.l2
        l1_cost = self._l1_cost
        l2_cost = self._l2_cost
        walk_cost = self._walk_cost
        l1_sets = l1._sets
        l1_n_sets = l1._n_sets
        l1_ways = l1._ways
        l2_sets = l2._sets
        l2_n_sets = l2._n_sets
        l2_ways = l2._ways
        l1_hits = l1_misses = l2_hits = l2_misses = 0
        costs: list[float] = []
        append_cost = costs.append
        walks: list[int] = []
        for pos, page in enumerate(pages):
            e1 = l1_sets[page % l1_n_sets]
            if page in e1:
                del e1[page]
                e1[page] = None
                l1_hits += 1
                append_cost(l1_cost)
                continue
            l1_misses += 1
            e2 = l2_sets[page % l2_n_sets]
            if page in e2:
                del e2[page]
                e2[page] = None
                l2_hits += 1
                if len(e1) >= l1_ways:
                    del e1[next(iter(e1))]
                e1[page] = None
                append_cost(l2_cost)
                continue
            l2_misses += 1
            if len(e2) >= l2_ways:
                del e2[next(iter(e2))]
            e2[page] = None
            if len(e1) >= l1_ways:
                del e1[next(iter(e1))]
            e1[page] = None
            append_cost(walk_cost)
            walks.append(pos)
        l1.hits += l1_hits
        l1.misses += l1_misses
        l1.lookups += l1_hits + l1_misses
        l2.hits += l2_hits
        l2.misses += l2_misses
        l2.lookups += l2_hits + l2_misses
        return costs, walks

    def shootdown(self, page: int) -> bool:
        """Invalidate ``page`` in both levels; True if either level held it."""
        in_l1 = self.l1.invalidate(page)
        in_l2 = self.l2.invalidate(page)
        return in_l1 or in_l2

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()

    def cached_pages(self) -> set[int]:
        """Pages with a valid entry in either level (for audits)."""
        return self.l1.cached_pages() | self.l2.cached_pages()

    @property
    def l2_misses(self) -> int:
        """Number of requests that required a page-table walk."""
        return self.l2.misses
