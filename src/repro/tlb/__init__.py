"""TLB hierarchy: per-GPU L1 and L2 TLBs with shootdown support.

Geometry follows Table I: a 32-entry 32-way (fully associative) L1 TLB and
a 512-entry 16-way shared L2 TLB, both LRU.  Page-management actions that
invalidate PTEs also shoot down the matching TLB entries; those shootdowns
are what makes migrations and collapses expensive beyond the data copy.
"""

from repro.tlb.hierarchy import TLBHierarchy, TranslationResult
from repro.tlb.tlb import SetAssociativeTLB

__all__ = ["SetAssociativeTLB", "TLBHierarchy", "TranslationResult"]
