"""MT — Matrix Transpose (AMDAPPSDK, scatter-gather, 3 objects).

Per Fig. 4: ``MT_Input`` is entirely read-only (every GPU gathers column
tiles from all over the input, so input pages are shared-read) and
``MT_Output`` is write-only and partitioned (each GPU writes its own
band).  The kernel is invoked several times (benchmark timing loops), so
the read-shared input strongly rewards duplication.
"""

from __future__ import annotations

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import emit_broadcast, emit_partitioned


def build_mt(
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 64.0,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build the MT trace (Table II: 3 objects, 64 MB at 4 GPUs)."""
    builder = TraceBuilder("mt", n_gpus, page_size, seed=seed, burst=burst)
    total = footprint_mb * MB
    inp = builder.alloc("MT_Input", int(total * 0.492))
    out = builder.alloc("MT_Output", int(total * 0.492))
    params = builder.alloc("MT_Params", max(page_size, int(total * 0.016)))

    builder.begin_phase("transpose", explicit=True)
    for _iteration in range(4):
        emit_broadcast(builder, params, write=False, weight=8)
        emit_broadcast(builder, inp, write=False, weight=16)
        emit_partitioned(builder, out, write=True, weight=32)
    builder.end_phase()
    return builder.build()
