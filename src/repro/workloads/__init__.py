"""Application workload models (Table II) and the trace framework."""

from repro.workloads.base import (
    ObjectDef,
    PhaseTrace,
    Trace,
    TraceBuilder,
)
from repro.workloads.io import load_trace, save_trace
from repro.workloads.registry import (
    APPLICATION_ORDER,
    APPLICATIONS,
    ApplicationInfo,
    get_workload,
)

__all__ = [
    "APPLICATION_ORDER",
    "APPLICATIONS",
    "ApplicationInfo",
    "ObjectDef",
    "PhaseTrace",
    "Trace",
    "TraceBuilder",
    "get_workload",
    "load_trace",
    "save_trace",
]
