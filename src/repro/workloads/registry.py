"""Application registry: Table II metadata and trace construction.

:data:`APPLICATIONS` maps the paper's application abbreviations to their
builders plus the Table II / Table III metadata (benchmark suite, access
pattern, object count, memory footprints per GPU count).  Traces are
memoized by their full parameter tuple so repeated experiments don't pay
generation twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.config import PAGE_SIZE_4K, SystemConfig
from repro.workloads.base import Trace
from repro.workloads.bfs import build_bfs
from repro.workloads.c2d import build_c2d
from repro.workloads.dnn import build_lenet, build_resnet18, build_vgg16
from repro.workloads.fft import build_fft
from repro.workloads.i2c import build_i2c
from repro.workloads.mm import build_mm
from repro.workloads.mt import build_mt
from repro.workloads.pr import build_pr
from repro.workloads.st import build_st


@dataclass(frozen=True)
class ApplicationInfo:
    """Table II row plus the Table III footprint scaling."""

    name: str
    full_name: str
    suite: str
    pattern: str
    n_objects: int
    #: Memory footprint (MB) keyed by GPU count (Tables II and III).
    footprint_mb: dict[int, int]
    builder: Callable[..., Trace]

    def footprint_for(self, n_gpus: int) -> int:
        """Footprint for a GPU count (nearest documented configuration)."""
        if n_gpus in self.footprint_mb:
            return self.footprint_mb[n_gpus]
        best = min(self.footprint_mb, key=lambda k: abs(k - n_gpus))
        return self.footprint_mb[best]


APPLICATIONS: dict[str, ApplicationInfo] = {
    "bfs": ApplicationInfo(
        "bfs", "Breadth-First Search", "SHOC", "random", 5,
        {4: 32, 8: 64, 16: 128}, build_bfs,
    ),
    "c2d": ApplicationInfo(
        "c2d", "Convolution 2D", "DNN-Mark", "adjacent", 10,
        {4: 92, 8: 200, 16: 308}, build_c2d,
    ),
    "fft": ApplicationInfo(
        "fft", "Fast Fourier Transform", "SHOC", "scatter-gather", 2,
        {4: 48, 8: 96, 16: 192}, build_fft,
    ),
    "i2c": ApplicationInfo(
        "i2c", "Image to Column", "DNN-Mark", "scatter-gather", 3,
        {4: 80, 8: 175, 16: 264}, build_i2c,
    ),
    "mm": ApplicationInfo(
        "mm", "Matrix Multiplication", "AMDAPPSDK", "scatter-gather", 4,
        {4: 32, 8: 128, 16: 192}, build_mm,
    ),
    "mt": ApplicationInfo(
        "mt", "Matrix Transpose", "AMDAPPSDK", "scatter-gather", 3,
        {4: 64, 8: 160, 16: 320}, build_mt,
    ),
    "pr": ApplicationInfo(
        "pr", "Page Rank", "Hetero-Mark", "random", 6,
        {4: 32, 8: 74, 16: 132}, build_pr,
    ),
    "st": ApplicationInfo(
        "st", "Stencil 2D", "SHOC", "adjacent", 3,
        {4: 32, 8: 65, 16: 129}, build_st,
    ),
    "lenet": ApplicationInfo(
        "lenet", "LeNet", "DNN-Mark", "adjacent", 115,
        {4: 24, 8: 64, 16: 170}, build_lenet,
    ),
    "vgg16": ApplicationInfo(
        "vgg16", "Visual Geometry Group 16-layer", "DNN-Mark", "adjacent",
        240, {4: 220, 8: 358, 16: 718}, build_vgg16,
    ),
    "resnet18": ApplicationInfo(
        "resnet18", "Residual Network 18-layer", "DNN-Mark", "adjacent",
        263, {4: 297, 8: 508, 16: 1167}, build_resnet18,
    ),
}

#: Application order used in the paper's figures.
APPLICATION_ORDER = (
    "bfs", "c2d", "fft", "i2c", "mm", "mt", "pr", "st",
    "lenet", "vgg16", "resnet18",
)


@lru_cache(maxsize=64)
def _cached_build(
    name: str, n_gpus: int, page_size: int, footprint_mb: float, seed: int,
    burst: int,
) -> Trace:
    info = APPLICATIONS[name]
    return info.builder(
        n_gpus=n_gpus,
        page_size=page_size,
        footprint_mb=footprint_mb,
        seed=seed,
        burst=burst,
    )


def get_workload(
    name: str,
    config: SystemConfig | None = None,
    *,
    n_gpus: int | None = None,
    page_size: int | None = None,
    footprint_mb: float | None = None,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build (or fetch from cache) one application trace.

    Args:
        name: application abbreviation from Table II (case-insensitive).
        config: optional system config providing GPU count and page size.
        n_gpus: override for the GPU count.
        page_size: override for the page size in bytes.
        footprint_mb: override the Table II/III footprint (used by the
            large-input study, Fig. 18).
        seed: RNG seed for pattern generators.
        burst: per-GPU record burst length used when interleaving.

    Note:
        Traces are cached and shared; callers must treat them as
        read-only (the simulator does).
    """
    key = name.lower()
    gpus = n_gpus if n_gpus is not None else (config.n_gpus if config else 4)
    psize = (
        page_size
        if page_size is not None
        else (config.page_size if config else PAGE_SIZE_4K)
    )
    if "+" in key:
        # Multi-tenant mix name ("mm+bfs"): delegate to the tenancy
        # interleaver, which builds each tenant through this registry.
        # Imported lazily — repro.tenancy.mix imports this module.
        from repro.tenancy.mix import get_mix_workload

        return get_mix_workload(
            key,
            n_gpus=gpus,
            page_size=psize,
            footprint_mb=footprint_mb,
            seed=seed,
            burst=burst,
        )
    if key not in APPLICATIONS:
        known = ", ".join(sorted(APPLICATIONS))
        raise ValueError(f"unknown application {name!r}; known: {known}")
    info = APPLICATIONS[key]
    mb = footprint_mb if footprint_mb is not None else info.footprint_for(gpus)
    return _cached_build(key, gpus, psize, float(mb), seed, burst)
