"""MM — Matrix Multiplication (AMDAPPSDK, scatter-gather, 4 objects).

Object behaviour per the paper's Fig. 5: ``MM_A`` and ``MM_B`` are
shared-read-only and dominate the accesses (~80%+); ``MM_C`` is a
private (partitioned) write-heavy output.  Every GPU computes a band of C
and therefore reads *all* of A and B repeatedly (tile reuse), which is why
duplication is the best uniform policy for MM (Fig. 2).
"""

from __future__ import annotations

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import emit_broadcast, emit_partitioned


def build_mm(
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 32.0,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build the MM trace (Table II: 4 objects, 32 MB at 4 GPUs)."""
    builder = TraceBuilder("mm", n_gpus, page_size, seed=seed, burst=burst)
    total = footprint_mb * MB
    a = builder.alloc("MM_A", int(total * 0.375))
    mat_b = builder.alloc("MM_B", int(total * 0.375))
    c = builder.alloc("MM_C", int(total * 0.235))
    params = builder.alloc("MM_Params", max(page_size, int(total * 0.015)))

    builder.begin_phase("gemm", explicit=True)
    for _sweep in range(4):
        emit_broadcast(builder, params, write=False, weight=16)
        emit_broadcast(builder, a, write=False, weight=64)
        emit_broadcast(builder, mat_b, write=False, weight=64)
        # C is an accumulator: each tile is read-modified-written.
        emit_partitioned(builder, c, write=False, weight=32)
        emit_partitioned(builder, c, write=True, weight=96)
    builder.end_phase()
    return builder.build()
