"""Trace framework: objects, phases, and the trace builder.

A :class:`Trace` is the unit of work the simulator executes.  It carries:

* the application's **objects** — each a ``cudaMallocManaged`` allocation
  with a name, size, allocation phase and optional free phase;
* a sequence of **phases** — explicit ones correspond to kernel launches
  (the runtime can observe them, Section IV-B); implicit ones are pattern
  shifts inside a single kernel (e.g. ST's iteration swaps) that the
  runtime *cannot* observe, so they carry ``explicit=False`` and policies
  receive no callback for them;
* per-phase, per-record access streams: ``(gpu, page, is_write, weight)``
  where *weight* is the number of dynamic accesses the record represents
  (post-cache reuse), already interleaved across GPUs in bursts.

Weights keep traces compact: one record for "GPU 2 reads page P about 400
times during this phase" costs one simulation step while preserving the
remote-vs-local traffic totals the policies compete on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.address_space import Allocation, VirtualAllocator

#: Default number of consecutive records one GPU contributes before the
#: interleaver switches to the next GPU.
DEFAULT_BURST = 32


@dataclass
class ObjectDef:
    """One application data object (a ``cudaMallocManaged`` allocation)."""

    name: str
    size_bytes: int
    obj_id: int
    allocation: Allocation
    alloc_phase: int = 0
    free_phase: int | None = None

    @property
    def n_pages(self) -> int:
        return self.allocation.n_pages

    @property
    def first_page(self) -> int:
        return self.allocation.first_page

    @property
    def last_page(self) -> int:
        """Inclusive index of the object's final page."""
        return self.allocation.last_page

    def pages(self) -> range:
        return self.allocation.pages()


@dataclass
class PhaseTrace:
    """One execution phase with its merged access stream."""

    name: str
    explicit: bool
    gpu: np.ndarray
    page: np.ndarray
    write: np.ndarray
    weight: np.ndarray
    #: Optional per-record tenant index (multi-tenant merged traces only;
    #: ``None`` for solo traces).  Redundant with the page windows — every
    #: tenant owns a disjoint page range — so it never feeds digests.
    tenant: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.gpu)

    @property
    def total_accesses(self) -> int:
        """Dynamic accesses represented (sum of weights)."""
        return int(self.weight.sum()) if len(self.weight) else 0

    def records(self):
        """Iterate ``(gpu, page, is_write, weight)`` tuples."""
        return zip(
            self.gpu.tolist(),
            self.page.tolist(),
            self.write.tolist(),
            self.weight.tolist(),
        )


@dataclass
class Trace:
    """A complete application trace."""

    name: str
    n_gpus: int
    page_size: int
    objects: list[ObjectDef]
    phases: list[PhaseTrace]
    first_page: int
    n_pages: int
    #: Tenant metadata for multi-tenant merged traces (a tuple of
    #: ``repro.tenancy.mix.TenantInfo``).  ``None`` for solo traces *and*
    #: for degenerate single-tenant mixes, so the machine treats those
    #: exactly like a plain solo run (bit-identical, fast-path eligible).
    tenants: tuple | None = None

    @property
    def footprint_bytes(self) -> int:
        """Total allocated bytes (the Table II memory footprint)."""
        return sum(o.allocation.n_pages * self.page_size for o in self.objects)

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    @property
    def total_records(self) -> int:
        return sum(len(p) for p in self.phases)

    @property
    def total_accesses(self) -> int:
        return sum(p.total_accesses for p in self.phases)

    def object_of_page(self, page: int) -> ObjectDef | None:
        """The object whose allocation covers ``page`` (binary search)."""
        objs = self.objects
        lo, hi = 0, len(objs)
        while lo < hi:
            mid = (lo + hi) // 2
            obj = objs[mid]
            if page < obj.first_page:
                hi = mid
            elif page > obj.last_page:
                lo = mid + 1
            else:
                return obj
        return None


class TraceBuilder:
    """Incrementally builds a :class:`Trace`.

    Usage::

        b = TraceBuilder("mt", n_gpus=4, page_size=4096, seed=7)
        inp = b.alloc("MT_Input", 32 * MB)
        out = b.alloc("MT_Output", 32 * MB)
        b.begin_phase("transpose", explicit=True)
        b.emit_block(gpu=0, obj=inp, offsets=np.arange(64), write=False,
                     weight=400)
        ...
        b.end_phase()
        trace = b.build()
    """

    def __init__(
        self,
        name: str,
        n_gpus: int,
        page_size: int,
        seed: int = 0,
        burst: int = DEFAULT_BURST,
    ) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.name = name
        self.n_gpus = n_gpus
        self.page_size = page_size
        self.burst = burst
        self.rng = np.random.default_rng(seed)
        self._allocator = VirtualAllocator(page_size)
        self._objects: list[ObjectDef] = []
        self._phases: list[PhaseTrace] = []
        self._phase_name: str | None = None
        self._phase_explicit = True
        # Per-GPU pending segments for the open phase: each segment is a
        # (pages, write, weight) array triple from one emit/emit_block.
        self._pending: (
            list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]] | None
        ) = None
        # Per-GPU buffers of single emit() records, flushed into one
        # segment when a block lands behind them or the phase ends.
        self._singles: list[list[tuple[int, int, int]]] | None = None
        self._scale_cache: dict[int, int] = {}

    # -- allocation ------------------------------------------------------

    def alloc(self, name: str, size_bytes: int) -> ObjectDef:
        """Allocate an object; its Obj_ID is its allocation order."""
        allocation = self._allocator.alloc(size_bytes)
        obj = ObjectDef(
            name=name,
            size_bytes=size_bytes,
            obj_id=len(self._objects),
            allocation=allocation,
            alloc_phase=len(self._phases),
        )
        self._objects.append(obj)
        return obj

    def free(self, obj: ObjectDef) -> None:
        """Mark an object freed after the phase currently being built."""
        obj.free_phase = len(self._phases)

    # -- phases --------------------------------------------------------------

    def begin_phase(self, name: str, explicit: bool = True) -> None:
        if self._pending is not None:
            raise RuntimeError("previous phase not ended")
        self._phase_name = name
        self._phase_explicit = explicit
        self._pending = [[] for _ in range(self.n_gpus)]
        self._singles = [[] for _ in range(self.n_gpus)]

    def weight_scale(self, obj: ObjectDef) -> int:
        """Access-weight multiplier for one of ``obj``'s pages.

        Generators express weights per 4 KB of data; with larger pages
        one page record stands for proportionally more accesses (capped
        by how much of the page the object actually occupies), keeping
        total dynamic accesses roughly page-size invariant.  The value
        is fixed per object, so it is computed once and cached.
        """
        scale = self._scale_cache.get(obj.obj_id)
        if scale is None:
            bytes_per_page = min(
                self.page_size, max(1, obj.size_bytes // obj.n_pages)
            )
            scale = max(1, round(bytes_per_page / 4096))
            self._scale_cache[obj.obj_id] = scale
        return scale

    def emit(
        self, gpu: int, obj: ObjectDef, page_offset: int, write: bool,
        weight: int = 1,
    ) -> None:
        """Append one record: GPU accesses one page of an object."""
        if self._pending is None:
            raise RuntimeError("no open phase")
        if not 0 <= page_offset < obj.n_pages:
            raise IndexError(
                f"page offset {page_offset} outside object {obj.name!r} "
                f"({obj.n_pages} pages)"
            )
        if weight < 1:
            raise ValueError("weight must be >= 1")
        page = obj.first_page + page_offset
        self._singles[gpu].append(
            (page, int(write), weight * self.weight_scale(obj))
        )

    def emit_block(
        self,
        gpu: int,
        obj: ObjectDef,
        offsets,
        write: bool,
        weight: int = 1,
    ) -> None:
        """Append one record per page offset in ``offsets`` (vectorized)."""
        if self._pending is None:
            raise RuntimeError("no open phase")
        offsets = np.asarray(offsets, dtype=np.int64)
        if len(offsets) == 0:
            return
        if offsets.min() < 0 or offsets.max() >= obj.n_pages:
            raise IndexError(
                f"offsets outside object {obj.name!r} ({obj.n_pages} pages)"
            )
        if weight < 1:
            raise ValueError("weight must be >= 1")
        n = len(offsets)
        self._flush_singles(gpu)
        self._pending[gpu].append(
            (
                obj.first_page + offsets,
                np.full(n, int(write), dtype=np.uint8),
                np.full(n, weight * self.weight_scale(obj), dtype=np.int64),
            )
        )

    def _flush_singles(self, gpu: int) -> None:
        """Convert buffered emit() records into one pending segment."""
        singles = self._singles[gpu]
        if not singles:
            return
        self._pending[gpu].append(
            (
                np.array([s[0] for s in singles], dtype=np.int64),
                np.array([s[1] for s in singles], dtype=np.uint8),
                np.array([s[2] for s in singles], dtype=np.int64),
            )
        )
        singles.clear()

    def end_phase(self) -> PhaseTrace:
        """Interleave the per-GPU streams in bursts and close the phase.

        The interleave is computed with one stable ``np.lexsort`` over
        (burst index, gpu) keys, which reproduces the round-robin burst
        order byte for byte: round *r* carries each GPU's *r*-th burst
        of records, GPUs in ascending order, records in emission order.
        """
        if self._pending is None:
            raise RuntimeError("no open phase")
        gpu_parts: list[np.ndarray] = []
        page_parts: list[np.ndarray] = []
        write_parts: list[np.ndarray] = []
        weight_parts: list[np.ndarray] = []
        block_parts: list[np.ndarray] = []
        for gpu in range(self.n_gpus):
            self._flush_singles(gpu)
            segments = self._pending[gpu]
            if not segments:
                continue
            pages = np.concatenate([s[0] for s in segments])
            n = len(pages)
            page_parts.append(pages)
            write_parts.append(np.concatenate([s[1] for s in segments]))
            weight_parts.append(np.concatenate([s[2] for s in segments]))
            gpu_parts.append(np.full(n, gpu, dtype=np.uint8))
            block_parts.append(np.arange(n, dtype=np.int64) // self.burst)
        if page_parts:
            gpu_all = np.concatenate(gpu_parts)
            order = np.lexsort((gpu_all, np.concatenate(block_parts)))
            phase = PhaseTrace(
                name=self._phase_name,
                explicit=self._phase_explicit,
                gpu=gpu_all[order],
                page=np.concatenate(page_parts)[order],
                write=np.concatenate(write_parts)[order],
                weight=np.concatenate(weight_parts)[order],
            )
        else:
            phase = PhaseTrace(
                name=self._phase_name,
                explicit=self._phase_explicit,
                gpu=np.array([], dtype=np.uint8),
                page=np.array([], dtype=np.int64),
                write=np.array([], dtype=np.uint8),
                weight=np.array([], dtype=np.int64),
            )
        self._phases.append(phase)
        self._pending = None
        self._singles = None
        self._phase_name = None
        return phase

    # -- finish -----------------------------------------------------------------

    def build(self) -> Trace:
        """Produce the immutable trace."""
        if self._pending is not None:
            raise RuntimeError("phase still open; call end_phase()")
        if not self._objects:
            raise RuntimeError("trace has no objects")
        first = min(o.first_page for o in self._objects)
        last = max(o.last_page for o in self._objects)
        return Trace(
            name=self.name,
            n_gpus=self.n_gpus,
            page_size=self.page_size,
            objects=list(self._objects),
            phases=list(self._phases),
            first_page=first,
            n_pages=last - first + 1,
        )
