"""Trace serialization: save/load traces as ``.npz`` archives.

Large traces (the 16-GPU DNN configurations reach millions of records)
take noticeable time to generate; saving them lets experiment campaigns
and external tools reuse them.  The format is a single compressed NumPy
archive holding the per-phase access arrays plus a JSON metadata blob
(objects, phase names, geometry).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.memory.address_space import Allocation
from repro.workloads.base import ObjectDef, PhaseTrace, Trace

#: Format version written into every archive.
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (a ``.npz`` archive); returns the path."""
    path = Path(path)
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "n_gpus": trace.n_gpus,
        "page_size": trace.page_size,
        "first_page": trace.first_page,
        "n_pages": trace.n_pages,
        "objects": [
            {
                "name": o.name,
                "size_bytes": o.size_bytes,
                "obj_id": o.obj_id,
                "base": o.allocation.base,
                "alloc_size": o.allocation.size,
                "alloc_phase": o.alloc_phase,
                "free_phase": o.free_phase,
            }
            for o in trace.objects
        ],
        "phases": [
            {"name": p.name, "explicit": p.explicit} for p in trace.phases
        ],
    }
    arrays = {"meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    for index, phase in enumerate(trace.phases):
        arrays[f"gpu_{index}"] = phase.gpu
        arrays[f"page_{index}"] = phase.page
        arrays[f"write_{index}"] = phase.write
        arrays[f"weight_{index}"] = phase.weight
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode())
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')!r}"
            )
        objects = [
            ObjectDef(
                name=o["name"],
                size_bytes=o["size_bytes"],
                obj_id=o["obj_id"],
                allocation=Allocation(
                    base=o["base"], size=o["alloc_size"],
                    page_size=meta["page_size"],
                ),
                alloc_phase=o["alloc_phase"],
                free_phase=o["free_phase"],
            )
            for o in meta["objects"]
        ]
        phases = [
            PhaseTrace(
                name=p["name"],
                explicit=p["explicit"],
                gpu=archive[f"gpu_{index}"],
                page=archive[f"page_{index}"],
                write=archive[f"write_{index}"],
                weight=archive[f"weight_{index}"],
            )
            for index, p in enumerate(meta["phases"])
        ]
    return Trace(
        name=meta["name"],
        n_gpus=meta["n_gpus"],
        page_size=meta["page_size"],
        objects=objects,
        phases=phases,
        first_page=meta["first_page"],
        n_pages=meta["n_pages"],
    )
