"""PR — PageRank (Hetero-Mark, random pattern, 6 objects).

Iterative rank propagation over a CSR graph.  Each iteration reads the
*source* rank vector from all over the graph (random shared reads),
writes the *destination* rank vector partitioned by vertex ownership, and
then the two vectors **swap** — the same buffer-swap structure as ST
(Fig. 7), so each iteration is an implicit phase in which the two rank
objects trade read-only and write-only roles.
"""

from __future__ import annotations

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import emit_gather, emit_partitioned, emit_random


def build_pr(
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 32.0,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build the PR trace (Table II: 6 objects, 32 MB at 4 GPUs)."""
    builder = TraceBuilder("pr", n_gpus, page_size, seed=seed, burst=burst)
    total = footprint_mb * MB
    edges = builder.alloc("PR_Edges", int(total * 0.40))
    offsets = builder.alloc("PR_Offsets", int(total * 0.10))
    rank_a = builder.alloc("PR_RankA", int(total * 0.175))
    rank_b = builder.alloc("PR_RankB", int(total * 0.175))
    degrees = builder.alloc("PR_OutDegrees", int(total * 0.10))
    diff = builder.alloc("PR_Diff", int(total * 0.05))

    rng = builder.rng
    src, dst = rank_a, rank_b
    n_iterations = 12
    for iteration in range(n_iterations):
        builder.begin_phase(f"iter{iteration}", explicit=(iteration == 0))
        emit_random(builder, offsets, weight=8, fraction=0.6,
                    write_ratio=0.0, rng=rng)
        emit_random(builder, edges, weight=8, fraction=0.6,
                    write_ratio=0.0, rng=rng)
        emit_random(builder, degrees, weight=8, fraction=0.6,
                    write_ratio=0.0, rng=rng)
        # Pull ranks of random in-neighbours: shared reads of src.  Hot
        # (high in-degree) vertex pages are read many times per iteration.
        emit_gather(builder, src, write=False, weight=48, fraction=0.35,
                    rng=rng)
        # Each GPU accumulates into the ranks of its own vertices
        # (read-modify-write).
        emit_partitioned(builder, dst, write=False, weight=4)
        emit_partitioned(builder, dst, write=True, weight=12)
        emit_partitioned(builder, diff, write=True, weight=6)
        builder.end_phase()
        src, dst = dst, src
    return builder.build()
