"""DNN training workloads: LeNet, VGG16, ResNet18 (DNN-Mark).

Data-parallel training: the minibatch is split across GPUs, so

* **weights** are broadcast-read by every GPU each forward/backward pass
  (shared-read-only → duplication-friendly);
* **activations** are private to the GPU holding that batch slice
  (partitioned, rw-mix → on-touch-friendly);
* **weight gradients** are written by every GPU during the ring
  all-reduce (shared-write → access-counter-friendly).

Every layer's forward and backward pass is its own kernel launch, so
these applications have many *explicit* phases — LeNet's 9 minibatches
over 7 layers plus 3 setup launches give the 129 explicit phases the
paper reports (Section VI-A).

Object counts are pinned to Table II: each layer allocates a fixed
template of buffers (weights, bias, activations, gradients, workspaces,
im2col buffers, statistics) exactly like DNN-Mark's per-layer setup:

* LeNet: 7 layers x 16 objects + 3 globals = 115;
* VGG16: 21 layers x 11 objects + 9 globals = 240;
* ResNet18: 26 layers x 10 objects + 3 globals = 263.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import ObjectDef, Trace, TraceBuilder
from repro.workloads.patterns import (
    emit_broadcast,
    emit_owner_init,
    emit_partitioned,
)

#: Object-template names sized from the layer's weight footprint.
_WEIGHT_LIKE = ("W", "dW")
#: Small per-layer parameter vectors.
_SMALL_LIKE = ("b", "db", "stat", "mean", "var", "scale", "dscale", "shift",
               "dshift")
#: Object-template names sized from the layer's activation footprint.
_ACT_LIKE = ("top", "dtop", "ws_f", "ws_b", "col", "dcol")


@dataclass(frozen=True)
class LayerSpec:
    """Relative footprint of one layer."""

    name: str
    weight_rel: float
    act_rel: float


@dataclass(frozen=True)
class ModelSpec:
    """One DNN model: layers, per-layer object template, globals."""

    name: str
    layers: tuple[LayerSpec, ...]
    template: tuple[str, ...]
    n_globals: int
    minibatches: int
    setup_phases: int

    @property
    def n_objects(self) -> int:
        return len(self.layers) * len(self.template) + self.n_globals

    @property
    def n_explicit_phases(self) -> int:
        return self.minibatches * 2 * len(self.layers) + self.setup_phases


def _conv_stack(prefix: str, n: int, weight_rel: float, act_rel: float,
                act_decay: float = 0.85) -> list[LayerSpec]:
    """A stack of conv layers with geometrically shrinking activations."""
    layers = []
    act = act_rel
    weight = weight_rel
    for i in range(n):
        layers.append(LayerSpec(f"{prefix}{i}", weight, act))
        act *= act_decay
        weight *= 1.3
    return layers


LENET = ModelSpec(
    name="lenet",
    layers=(
        LayerSpec("conv1", 0.02, 1.00),
        LayerSpec("pool1", 0.01, 0.50),
        LayerSpec("conv2", 0.08, 0.40),
        LayerSpec("pool2", 0.01, 0.20),
        LayerSpec("fc1", 0.60, 0.10),
        LayerSpec("fc2", 0.20, 0.05),
        LayerSpec("softmax", 0.01, 0.05),
    ),
    template=("W", "b", "dW", "db", "top", "dtop", "ws_f", "ws_b", "col",
              "dcol", "mean", "var", "scale", "dscale", "shift", "dshift"),
    n_globals=3,
    minibatches=9,
    setup_phases=3,
)

VGG16 = ModelSpec(
    name="vgg16",
    layers=tuple(
        _conv_stack("conv", 13, weight_rel=0.05, act_rel=1.0)
        + [
            LayerSpec("pool", 0.01, 0.10),
            LayerSpec("fc1", 3.00, 0.05),
            LayerSpec("fc2", 1.20, 0.04),
            LayerSpec("fc3", 0.30, 0.03),
            LayerSpec("softmax", 0.01, 0.03),
            LayerSpec("loss", 0.01, 0.02),
            LayerSpec("prep", 0.01, 0.30),
            LayerSpec("norm", 0.01, 0.20),
        ]
    ),
    template=("W", "b", "dW", "db", "top", "dtop", "ws_f", "ws_b", "col",
              "dcol", "stat"),
    n_globals=9,
    minibatches=3,
    setup_phases=2,
)

RESNET18 = ModelSpec(
    name="resnet18",
    layers=tuple(
        [LayerSpec("stem", 0.05, 1.0)]
        + _conv_stack("block", 24, weight_rel=0.10, act_rel=0.80,
                      act_decay=0.90)
        + [LayerSpec("fc", 0.50, 0.03)]
    ),
    template=("W", "b", "dW", "db", "top", "dtop", "ws_f", "ws_b", "col",
              "stat"),
    n_globals=3,
    minibatches=3,
    setup_phases=2,
)

#: How each model splits its footprint between weights / activations / rest.
_WEIGHT_SHARE = 0.25
_ACT_SHARE = 0.65
_SMALL_SHARE = 0.10


def _layer_object_sizes(
    spec: ModelSpec, footprint_bytes: float, page_size: int
) -> dict[tuple[int, str], int]:
    """Absolute byte size of every per-layer object."""
    weight_total = sum(layer.weight_rel for layer in spec.layers)
    act_total = sum(layer.act_rel for layer in spec.layers)
    n_small = sum(1 for t in spec.template if t in _SMALL_LIKE)
    n_weight = sum(1 for t in spec.template if t in _WEIGHT_LIKE)
    n_act = sum(1 for t in spec.template if t in _ACT_LIKE)
    small_budget = footprint_bytes * _SMALL_SHARE
    small_each = small_budget / max(1, n_small * len(spec.layers))
    sizes: dict[tuple[int, str], int] = {}
    for index, layer in enumerate(spec.layers):
        weight_bytes = (
            footprint_bytes * _WEIGHT_SHARE * layer.weight_rel / weight_total
        )
        act_bytes = footprint_bytes * _ACT_SHARE * layer.act_rel / act_total
        for tname in spec.template:
            if tname in _WEIGHT_LIKE:
                size = weight_bytes / n_weight
            elif tname in _ACT_LIKE:
                size = act_bytes / n_act
            else:
                size = small_each
            sizes[(index, tname)] = max(256, int(size))
    return sizes


def build_dnn(
    spec: ModelSpec,
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 100.0,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build a data-parallel training trace for ``spec``."""
    builder = TraceBuilder(spec.name, n_gpus, page_size, seed=seed, burst=burst)
    # Broadcast records scale with the GPU count; at 8+ GPUs one fewer
    # minibatch keeps trace sizes tractable without changing any object's
    # behaviour (steady-state patterns repeat identically per minibatch).
    minibatches = (
        spec.minibatches if n_gpus <= 4 else max(2, spec.minibatches - 1)
    )
    footprint = footprint_mb * MB
    # Globals take a fixed small slice; layers share the rest.
    global_slice = 0.04 * footprint
    layer_budget = footprint - global_slice
    sizes = _layer_object_sizes(spec, layer_budget, page_size)

    globals_list: list[ObjectDef] = []
    global_names = ["input", "labels", "loss"] + [
        f"scratch{i}" for i in range(spec.n_globals - 3)
    ]
    for gname in global_names:
        share = 0.7 if gname == "input" else 0.3 / max(1, len(global_names) - 1)
        globals_list.append(
            builder.alloc(f"{spec.name}_{gname}", max(256, int(global_slice * share)))
        )

    objects: dict[tuple[int, str], ObjectDef] = {}
    for index, layer in enumerate(spec.layers):
        for tname in spec.template:
            objects[(index, tname)] = builder.alloc(
                f"{layer.name}_{tname}", sizes[(index, tname)]
            )

    input_obj = globals_list[0]

    # -- setup phases ----------------------------------------------------
    for setup in range(spec.setup_phases):
        builder.begin_phase(f"setup{setup}", explicit=True)
        if setup == 0:
            for gobj in globals_list:
                emit_owner_init(builder, gobj, weight=4)
        else:
            for index in range(len(spec.layers)):
                emit_owner_init(builder, objects[(index, "W")], weight=4)
                emit_owner_init(builder, objects[(index, "b")], weight=2)
        builder.end_phase()

    # -- training minibatches -----------------------------------------------
    for batch in range(minibatches):
        # Forward: layer by layer, one kernel each.
        for index in range(len(spec.layers)):
            builder.begin_phase(f"fwd_b{batch}_l{index}", explicit=True)
            emit_broadcast(builder, objects[(index, "W")], write=False,
                           weight=48)
            emit_broadcast(builder, objects[(index, "b")], write=False,
                           weight=8)
            below = (
                input_obj if index == 0 else objects[(index - 1, "top")]
            )
            emit_partitioned(builder, below, write=False, weight=32)
            if "col" in spec.template:
                emit_partitioned(builder, objects[(index, "col")],
                                 write=True, weight=24)
            emit_partitioned(builder, objects[(index, "top")], write=True,
                             weight=32)
            if "ws_f" in spec.template:
                emit_partitioned(builder, objects[(index, "ws_f")],
                                 write=True, weight=8)
            builder.end_phase()
        # Backward: layer by layer in reverse.
        for index in reversed(range(len(spec.layers))):
            builder.begin_phase(f"bwd_b{batch}_l{index}", explicit=True)
            emit_broadcast(builder, objects[(index, "W")], write=False,
                           weight=24)
            emit_partitioned(builder, objects[(index, "top")], write=False,
                             weight=24)
            emit_partitioned(builder, objects[(index, "dtop")], write=True,
                             weight=24)
            # Gradient all-reduce: every GPU contributes to every chunk.
            emit_broadcast(builder, objects[(index, "dW")], write=True,
                           weight=6)
            emit_broadcast(builder, objects[(index, "db")], write=True,
                           weight=2)
            if "ws_b" in spec.template:
                emit_partitioned(builder, objects[(index, "ws_b")],
                                 write=True, weight=8)
            builder.end_phase()
    return builder.build()


def build_lenet(n_gpus: int = 4, page_size: int = PAGE_SIZE_4K,
                footprint_mb: float = 24.0, seed: int = 0,
                burst: int = 32) -> Trace:
    """LeNet on MNIST (Table II: 115 objects, 24 MB, 129 explicit phases)."""
    return build_dnn(LENET, n_gpus, page_size, footprint_mb, seed, burst)


def build_vgg16(n_gpus: int = 4, page_size: int = PAGE_SIZE_4K,
                footprint_mb: float = 220.0, seed: int = 0,
                burst: int = 32) -> Trace:
    """VGG16 on Tiny-ImageNet (Table II: 240 objects, 220 MB)."""
    return build_dnn(VGG16, n_gpus, page_size, footprint_mb, seed, burst)


def build_resnet18(n_gpus: int = 4, page_size: int = PAGE_SIZE_4K,
                   footprint_mb: float = 297.0, seed: int = 0,
                   burst: int = 32) -> Trace:
    """ResNet18 on Tiny-ImageNet (Table II: 263 objects, 297 MB)."""
    return build_dnn(RESNET18, n_gpus, page_size, footprint_mb, seed, burst)
