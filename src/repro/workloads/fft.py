"""FFT — Fast Fourier Transform (SHOC, scatter-gather, 2 objects).

A multi-stage butterfly over ``FFT_Data``: each stage updates the data in
place within each GPU's band, and between stages GPUs gather stride-
partner pages from the other bands (the scatter-gather exchange).  The
exchange makes ``FFT_Data`` shared-rw-mix, while ``FFT_Twiddle`` is a
read-only table every GPU consults each stage.  Stages are *implicit*
phases inside one kernel launch.
"""

from __future__ import annotations

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import (
    emit_broadcast,
    emit_gather,
    emit_partitioned,
)


def build_fft(
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 48.0,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build the FFT trace (Table II: 2 objects, 48 MB at 4 GPUs)."""
    builder = TraceBuilder("fft", n_gpus, page_size, seed=seed, burst=burst)
    total = footprint_mb * MB
    data = builder.alloc("FFT_Data", int(total * 0.83))
    twiddle = builder.alloc("FFT_Twiddle", int(total * 0.17))

    n_stages = 6
    for stage in range(n_stages):
        builder.begin_phase(f"stage{stage}", explicit=(stage == 0))
        emit_broadcast(builder, twiddle, write=False, weight=24)
        # Butterflies update the local band in place, then the next
        # stage's exchange gathers stride-partner pages remotely.
        emit_partitioned(builder, data, write=False, weight=24)
        emit_partitioned(builder, data, write=True, weight=24)
        emit_gather(
            builder, data, write=False, weight=32, fraction=0.2,
            rng=builder.rng,
        )
        builder.end_phase()
    return builder.build()
