"""Access-pattern primitives shared by the application models.

Each helper emits records into an open :class:`~repro.workloads.base.
TraceBuilder` phase.  The primitives correspond to the multi-GPU access
patterns of Table II:

* *partitioned* — each GPU works on its own contiguous band (private);
* *broadcast* — every GPU touches every page (shared);
* *halo* — partitioned plus boundary pages shared with neighbouring GPUs
  (the "adjacent" pattern);
* *gather* — each GPU samples pages from every band (the "scatter-gather"
  pattern);
* *random* — unpredictable page sets per GPU (the "random" pattern).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import ObjectDef, TraceBuilder


def band_offsets(obj: ObjectDef, n_bands: int, band: int) -> np.ndarray:
    """Page offsets of one contiguous band of an object.

    Bands split the object's *bytes* nearly equally; the band's page set
    is every page its byte range touches.  With 4 KB pages bands are
    almost disjoint, but with 2 MB pages the boundary page is shared by
    adjacent bands — and a small object collapses onto a single page every
    band touches.  That is precisely the private-to-shared conversion the
    paper's large-page study observes (Section VI-B4).
    """
    if not 0 <= band < n_bands:
        raise ValueError(f"band {band} outside 0..{n_bands - 1}")
    page_size = obj.allocation.page_size
    start_byte = band * obj.size_bytes // n_bands
    end_byte = (band + 1) * obj.size_bytes // n_bands
    if end_byte <= start_byte:
        return np.empty(0, dtype=np.int64)
    first = start_byte // page_size
    last = (end_byte - 1) // page_size
    return np.arange(first, min(last, obj.n_pages - 1) + 1, dtype=np.int64)


def emit_partitioned(
    builder: TraceBuilder,
    obj: ObjectDef,
    write: bool,
    weight: int,
    shift: int = 0,
) -> None:
    """Every GPU accesses its own band; ``shift`` rotates the assignment.

    A non-zero shift models producer/consumer handoff between phases: the
    band GPU ``g`` wrote in the previous phase is read by GPU
    ``(g + shift) % n`` in this one (the C2D behaviour of Fig. 6).
    """
    n = builder.n_gpus
    for gpu in range(n):
        offsets = band_offsets(obj, n, (gpu + shift) % n)
        builder.emit_block(gpu, obj, offsets, write=write, weight=weight)


def emit_broadcast(
    builder: TraceBuilder,
    obj: ObjectDef,
    write: bool,
    weight: int,
) -> None:
    """Every GPU accesses every page of the object."""
    offsets = np.arange(obj.n_pages, dtype=np.int64)
    for gpu in range(builder.n_gpus):
        builder.emit_block(gpu, obj, offsets, write=write, weight=weight)


def emit_halo(
    builder: TraceBuilder,
    obj: ObjectDef,
    write: bool,
    weight: int,
    halo_pages: int,
    periodic: bool = False,
) -> None:
    """Partitioned access plus boundary pages of the neighbouring bands.

    Each GPU touches its own band and the ``halo_pages`` pages of each
    neighbour's band adjacent to its own (the stencil exchange pattern).
    With ``periodic=True`` the first and last GPUs are neighbours too
    (periodic boundary, as in a torus decomposition or a large grid where
    edge effects are negligible).
    """
    if halo_pages < 0:
        raise ValueError("halo_pages must be non-negative")
    n = builder.n_gpus
    for gpu in range(n):
        own = band_offsets(obj, n, gpu)
        pieces = [own]
        if gpu > 0 or periodic:
            left = band_offsets(obj, n, (gpu - 1) % n)
            if len(left):
                pieces.append(left[-min(halo_pages, len(left)):])
        if gpu < n - 1 or periodic:
            right = band_offsets(obj, n, (gpu + 1) % n)
            if len(right):
                pieces.append(right[: min(halo_pages, len(right))])
        builder.emit_block(
            gpu, obj, np.concatenate(pieces), write=write, weight=weight
        )


def emit_gather(
    builder: TraceBuilder,
    obj: ObjectDef,
    write: bool,
    weight: int,
    fraction: float,
    rng: np.random.Generator,
) -> None:
    """Scatter-gather: each GPU samples ``fraction`` of every band's pages."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    n = builder.n_gpus
    for gpu in range(n):
        pieces = []
        for band in range(n):
            pages = band_offsets(obj, n, band)
            if len(pages) == 0:
                continue
            take = max(1, int(len(pages) * fraction))
            pieces.append(rng.choice(pages, size=take, replace=False))
        if not pieces:
            continue
        offsets = np.sort(np.concatenate(pieces))
        builder.emit_block(gpu, obj, offsets, write=write, weight=weight)


def emit_random(
    builder: TraceBuilder,
    obj: ObjectDef,
    weight: int,
    fraction: float,
    write_ratio: float,
    rng: np.random.Generator,
) -> None:
    """Random pattern: each GPU touches a random page subset, mixed R/W.

    ``write_ratio`` of each GPU's sampled pages are written, the rest
    read — pages land on GPUs unpredictably (BFS/PR behaviour).
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if not 0 <= write_ratio <= 1:
        raise ValueError("write_ratio must be in [0, 1]")
    for gpu in range(builder.n_gpus):
        take = max(1, int(obj.n_pages * fraction))
        offsets = rng.choice(obj.n_pages, size=take, replace=False)
        n_writes = int(take * write_ratio)
        if n_writes:
            builder.emit_block(
                gpu, obj, offsets[:n_writes], write=True, weight=weight
            )
        if take - n_writes:
            builder.emit_block(
                gpu, obj, offsets[n_writes:], write=False, weight=weight
            )


def emit_owner_init(
    builder: TraceBuilder, obj: ObjectDef, weight: int = 4, gpu: int = 0
) -> None:
    """One GPU initializes the whole object (setup-phase writes)."""
    offsets = np.arange(obj.n_pages, dtype=np.int64)
    builder.emit_block(gpu, obj, offsets, write=True, weight=weight)
