"""ST — Stencil 2D (SHOC, adjacent pattern, 3 objects).

The paper's running example of *implicit* phases (Fig. 7): a single
kernel launch loops over iterations; every iteration reads
``ST_currData`` (own band plus neighbour halo rows) and writes
``ST_newData`` (own band), then swaps the two buffers.  Both objects are
shared-rw-mix over the whole run but read-only / write-only within one
iteration — exactly what OASIS's PF-count self-correction detects.
"""

from __future__ import annotations

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import emit_broadcast, emit_halo


def build_st(
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 32.0,
    seed: int = 0,
    burst: int = 32,
    n_iterations: int = 20,
) -> Trace:
    """Build the ST trace (Table II: 3 objects, 32 MB at 4 GPUs)."""
    builder = TraceBuilder("st", n_gpus, page_size, seed=seed, burst=burst)
    total = footprint_mb * MB
    curr = builder.alloc("ST_currData", int(total * 0.46))
    new = builder.alloc("ST_newData", int(total * 0.46))
    params = builder.alloc("ST_Params", max(page_size, int(total * 0.08)))

    # The grid is 2D-tiled: row-major 4 KB pages hold only a few rows of
    # one tile, so pages straddling a tile's column boundary are *read
    # and written by both adjacent GPUs* — most grid pages end up
    # rw-shared, which is why the paper classifies ST's data objects as
    # shared-rw-mix and why the counter policy suits them.
    halo = max(1, curr.n_pages // (2 * n_gpus))
    for iteration in range(n_iterations):
        builder.begin_phase(f"iter{iteration}", explicit=(iteration == 0))
        emit_broadcast(builder, params, write=False, weight=4)
        # 5-point stencil: each cell of the current grid read ~5 times,
        # with boundary pages pulled from the neighbouring GPUs' tiles.
        emit_halo(builder, curr, write=False, weight=40, halo_pages=halo,
                  periodic=True)
        # Results land in the new grid; column-boundary pages receive
        # writes from both tiles sharing them.
        emit_halo(builder, new, write=True, weight=16, halo_pages=halo,
                  periodic=True)
        builder.end_phase()
        curr, new = new, curr
    return builder.build()
