"""C2D — Convolution 2D (DNN-Mark, adjacent pattern, 10 objects).

The paper's running example of *explicit* phases (Fig. 6): a convolution
implemented as Image-to-Column → GEMM → Matrix-Transpose, repeated for
two layers (8 kernel launches total).  The intermediate buffers
(``Im2col_Output``, ``GEMM_Output``) are written partitioned in one phase
and read — by a *rotated* GPU assignment — in the next, so each is
private within a phase but shared (and rw-mix) over the whole run.
``C2D_Weights`` is broadcast-read by every GPU during GEMM.
"""

from __future__ import annotations

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import (
    emit_broadcast,
    emit_owner_init,
    emit_partitioned,
)


def build_c2d(
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 92.0,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build the C2D trace (Table II: 10 objects, 92 MB at 4 GPUs)."""
    builder = TraceBuilder("c2d", n_gpus, page_size, seed=seed, burst=burst)
    total = footprint_mb * MB
    inp = builder.alloc("C2D_Input", int(total * 0.13))
    weights = builder.alloc("C2D_Weights", int(total * 0.09))
    im2col_out = builder.alloc("Im2col_Output", int(total * 0.26))
    gemm_out = builder.alloc("GEMM_Output", int(total * 0.22))
    mt_out = builder.alloc("MT_Output", int(total * 0.22))
    bias = builder.alloc("C2D_Bias", int(total * 0.02))
    scratch_a = builder.alloc("C2D_ScratchA", int(total * 0.02))
    scratch_b = builder.alloc("C2D_ScratchB", int(total * 0.02))
    alpha = builder.alloc("C2D_Alpha", max(page_size, int(total * 0.01)))
    beta = builder.alloc("C2D_Beta", max(page_size, int(total * 0.01)))

    builder.begin_phase("setup", explicit=True)
    emit_owner_init(builder, inp, weight=8)
    emit_owner_init(builder, weights, weight=8)
    emit_owner_init(builder, bias, weight=4)
    emit_owner_init(builder, alpha, weight=2)
    emit_owner_init(builder, beta, weight=2)
    builder.end_phase()

    for layer, source in enumerate((inp, mt_out)):
        shift = layer + 1
        builder.begin_phase(f"im2col_l{layer}", explicit=True)
        # Each GPU expands its slice of the layer input; layer 1 consumes
        # the previous layer's transposed output under a rotated mapping.
        emit_partitioned(builder, source, write=False, weight=96, shift=shift)
        emit_partitioned(builder, im2col_out, write=True, weight=48)
        emit_partitioned(builder, scratch_a, write=True, weight=16)
        builder.end_phase()

        builder.begin_phase(f"gemm_l{layer}", explicit=True)
        emit_broadcast(builder, weights, write=False, weight=64)
        emit_broadcast(builder, alpha, write=False, weight=8)
        emit_partitioned(builder, im2col_out, write=False, weight=64,
                         shift=1)
        emit_partitioned(builder, gemm_out, write=True, weight=64)
        emit_broadcast(builder, bias, write=False, weight=16)
        builder.end_phase()

        builder.begin_phase(f"transpose_l{layer}", explicit=True)
        emit_broadcast(builder, beta, write=False, weight=8)
        emit_partitioned(builder, gemm_out, write=False, weight=32, shift=1)
        emit_partitioned(builder, mt_out, write=True, weight=32)
        emit_partitioned(builder, scratch_b, write=True, weight=16)
        builder.end_phase()

    builder.begin_phase("readback", explicit=True)
    emit_partitioned(builder, mt_out, write=False, weight=16, shift=1)
    builder.end_phase()
    return builder.build()
