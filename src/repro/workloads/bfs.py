"""BFS — Breadth-First Search (SHOC, random pattern, 5 objects).

Frontier-driven traversal: each level, GPUs expand their share of the
frontier, chasing edges into arbitrary partitions.  The CSR arrays
(``BFS_Edges``, ``BFS_Offsets``) are read-shared with low per-page reuse;
``BFS_Frontier`` and ``BFS_Visited`` are read-write-shared with random
GPU placement, and ``BFS_Cost`` (the level/output array) is written by
whichever GPU discovers the vertex.  Random low-reuse rw sharing makes
on-touch ping-pong and duplication collapse-thrash; access-counter
migration suits it best (Fig. 2 / Observation 3).

Levels are *implicit* phases of a single kernel launch.
"""

from __future__ import annotations

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import emit_random


def build_bfs(
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 32.0,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build the BFS trace (Table II: 5 objects, 32 MB at 4 GPUs)."""
    builder = TraceBuilder("bfs", n_gpus, page_size, seed=seed, burst=burst)
    total = footprint_mb * MB
    edges = builder.alloc("BFS_Edges", int(total * 0.50))
    offsets = builder.alloc("BFS_Offsets", int(total * 0.125))
    frontier_a = builder.alloc("BFS_Frontier", int(total * 0.125))
    frontier_b = builder.alloc("BFS_NewFrontier", int(total * 0.125))
    cost = builder.alloc("BFS_Cost", int(total * 0.125))

    rng = builder.rng
    curr, new = frontier_a, frontier_b
    n_levels = 10
    for level in range(n_levels):
        builder.begin_phase(f"level{level}", explicit=(level == 0))
        # Expand: chase CSR arrays for the vertices in the current
        # frontier — random read-shared pages, low reuse.
        emit_random(builder, offsets, weight=6, fraction=0.5,
                    write_ratio=0.0, rng=rng)
        emit_random(builder, edges, weight=6, fraction=0.5,
                    write_ratio=0.0, rng=rng)
        # The current frontier is read by everyone; discovered vertices
        # land in the new frontier (random writes) — the two swap each
        # level, like ST's buffer swap.
        emit_random(builder, curr, weight=10, fraction=0.6,
                    write_ratio=0.0, rng=rng)
        emit_random(builder, new, weight=4, fraction=0.6,
                    write_ratio=1.0, rng=rng)
        # Levels of newly discovered vertices: mostly writes, with the
        # occasional read-check (rw-mix, random placement).
        emit_random(builder, cost, weight=4, fraction=0.4,
                    write_ratio=0.7, rng=rng)
        builder.end_phase()
        curr, new = new, curr
    return builder.build()
