"""I2C — Image to Column (DNN-Mark, scatter-gather, 3 objects).

Per Fig. 5: ``I2C_Output`` is a private rw-mix object taking ~75% of all
accesses (each GPU writes, then re-reads, its own band of the expanded
column buffer); ``I2C_Input`` is read with neighbour overlap (convolution
windows straddle batch-slice boundaries).  The private, heavily-reused
output is why on-touch migration is the best uniform policy for I2C
(Fig. 2): counter-based migration leaves it remote behind the threshold,
and duplication taxes its writes with protection faults.
"""

from __future__ import annotations

from repro.config import MB, PAGE_SIZE_4K
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import emit_gather, emit_partitioned


def build_i2c(
    n_gpus: int = 4,
    page_size: int = PAGE_SIZE_4K,
    footprint_mb: float = 80.0,
    seed: int = 0,
    burst: int = 32,
) -> Trace:
    """Build the I2C trace (Table II: 3 objects, 80 MB at 4 GPUs)."""
    builder = TraceBuilder("i2c", n_gpus, page_size, seed=seed, burst=burst)
    total = footprint_mb * MB
    inp = builder.alloc("I2C_Input", int(total * 0.25))
    out = builder.alloc("I2C_Output", int(total * 0.70))
    params = builder.alloc("I2C_Params", max(page_size, int(total * 0.05)))

    builder.begin_phase("im2col", explicit=True)
    for _sweep in range(2):
        emit_partitioned(builder, params, write=False, weight=8)
        # Scatter-gather (Table II): each GPU's expansion windows pull
        # pixels from across the whole input, so input pages are
        # read-shared; each pixel is re-read ~9x by overlapping windows.
        emit_gather(builder, inp, write=False, weight=24, fraction=0.6,
                    rng=builder.rng)
        emit_partitioned(builder, out, write=True, weight=32)
        emit_partitioned(builder, out, write=False, weight=24)
    builder.end_phase()
    return builder.build()
