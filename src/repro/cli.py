"""Command-line interface: ``repro-oasis``.

Subcommands:

* ``simulate APP [--policy P ...]`` — run one application under one or
  more policies and print a comparison table.
* ``experiment ID`` — regenerate a paper table/figure (see ``list``).
* ``reproduce`` — one-command reproduce-all: every experiment through
  the parallel harness into a per-run artifact directory
  (``manifest.json``, ``metrics.jsonl``, ``summary.json``) plus the
  consolidated ``results/BENCH_all.json``; resumable (``--smoke``,
  ``--only``, ``--seeds``; same as ``scripts/reproduce_all``).
* ``list`` — list applications, policies, and experiments.
* ``characterize APP`` — print the Section IV object characterization.
* ``faults APP [--plan NAME|JSON|@FILE]`` — compare a healthy run
  against the same run under an injected fault plan; ``--audit`` runs
  the machine-invariant audit instead.
* ``trace APP [--policy P] [--out FILE]`` — record one run with the
  observability tracer and export a Chrome ``trace_event`` JSON timeline
  (open in Perfetto / ``chrome://tracing``).
* ``verify`` — simulator-wide verification: phase-boundary invariants,
  differential oracles across every execution mode, golden-digest
  regression (``--update-golden`` re-pins), and a seeded trace fuzzer
  with delta-debugging shrinking (``--fuzz``).
* ``serve`` — run the single-flight simulation service (asyncio job
  queue with admission control, priority lanes and deduplication) with
  ``/healthz`` + ``/metrics`` HTTP endpoints.
* ``cluster --workers N`` — run a consistent-hash router in front of N
  ``serve`` worker subprocesses sharing one result store (heartbeat,
  job stealing, lane-aware load shedding).
* ``submit APP`` — submit one run to a running ``serve`` instance and
  print the result.

``simulate`` and ``sweep`` also accept ``--trace`` / ``--metrics-out``
to export timelines and metric dumps alongside their normal output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import (
    POLICY_FACTORIES,
    baseline_config,
    get_workload,
    make_policy,
    simulate,
)
from repro.analysis import (
    access_share_by_object,
    classify_object,
    classify_pages,
)
from repro.config import PAGE_SIZE_2M
from repro.harness import EXPERIMENTS, run_experiment
from repro.harness.charts import bar_chart
from repro.workloads import APPLICATION_ORDER, APPLICATIONS


def _build_config(args):
    kwargs = {}
    if getattr(args, "gpus", None):
        kwargs["n_gpus"] = args.gpus
    if getattr(args, "large_pages", False):
        kwargs["page_size"] = PAGE_SIZE_2M
    if getattr(args, "oversubscription", None):
        kwargs["oversubscription"] = args.oversubscription
    if getattr(args, "distributed", False):
        kwargs["initial_placement"] = "distributed"
    if getattr(args, "reset_threshold", None):
        kwargs["reset_threshold"] = args.reset_threshold
    return baseline_config(**kwargs)


def _resolve_fault_plan(raw, config, trace=None):
    """Turn a ``--fault-plan`` value into a :class:`FaultPlan`.

    Accepts a preset name (see ``repro.faults.PRESETS``), an inline JSON
    spec (starts with ``{``), or ``@path/to/plan.json``.
    """
    from repro.faults import PRESETS, FaultPlan, preset_plan

    raw = raw.strip()
    if raw.startswith("@"):
        raw = Path(raw[1:]).read_text().strip()
    if raw.startswith("{"):
        return FaultPlan.from_spec(raw)
    if raw in PRESETS:
        return preset_plan(raw, config, trace)
    known = ", ".join(sorted(PRESETS))
    raise SystemExit(
        f"unknown fault plan {raw!r}: expected a preset ({known}), "
        "inline JSON, or @file.json"
    )


def _observed_path(base: str, policy: str, many: bool) -> Path:
    """Output path for one policy's export (suffixed when several run)."""
    path = Path(base)
    if not many:
        return path
    return path.with_name(f"{path.stem}.{policy}{path.suffix}")


def _export_run(args, policy: str, tracer, metrics, workload: str,
                many: bool) -> None:
    """Write the requested trace/metrics exports for one observed run."""
    from repro.obs import write_chrome_trace, write_prometheus

    if getattr(args, "trace_out", None):
        path = _observed_path(args.trace_out, policy, many)
        write_chrome_trace(
            path, tracer, {"workload": workload, "policy": policy}
        )
        print(f"trace written to {path}")
    if getattr(args, "metrics_out", None):
        path = _observed_path(args.metrics_out, policy, many)
        write_prometheus(path, metrics.snapshot())
        print(f"metrics written to {path}")


def cmd_simulate(args) -> int:
    config = _build_config(args)
    trace = get_workload(args.app, config, footprint_mb=args.footprint_mb)
    if getattr(args, "fault_plan", None):
        plan = _resolve_fault_plan(args.fault_plan, config, trace)
        config = config.replace(fault_plan=plan)
    observed = bool(args.trace_out or args.metrics_out)
    results = {}
    for name in args.policy:
        if observed:
            from repro.obs import MetricsRegistry, RecordingTracer

            tracer, metrics = RecordingTracer(), MetricsRegistry()
            results[name] = simulate(
                config, trace, make_policy(name),
                tracer=tracer, metrics=metrics,
            )
            _export_run(
                args, name, tracer, metrics, args.app,
                many=len(args.policy) > 1,
            )
        else:
            results[name] = simulate(config, trace, make_policy(name))
    baseline = results[args.policy[0]]
    print(f"{'policy':<16s} {'time(ms)':>10s} {'speedup':>8s} "
          f"{'faults':>9s} {'migr':>8s} {'dup':>8s} {'collapse':>8s}")
    for name, r in results.items():
        print(f"{name:<16s} {r.total_time_ns / 1e6:>10.2f} "
              f"{r.speedup_over(baseline):>8.2f} {int(r.total_faults):>9d} "
              f"{int(r.migrations):>8d} {int(r.duplications):>8d} "
              f"{int(r.collapses):>8d}")
    print()
    print(bar_chart(
        [(name, r.speedup_over(baseline)) for name, r in results.items()],
        reference=1.0,
    ))
    if config.fault_plan is not None:
        print("resilience counters:")
        for name, r in results.items():
            summary = r.resilience_summary()
            if summary:
                rendered = ", ".join(
                    f"{k}={int(v)}" for k, v in summary.items()
                )
                print(f"  {name}: {rendered}")
    return 0


def cmd_faults(args) -> int:
    """Healthy-vs-faulted comparison, or the invariant audit."""
    if args.audit:
        from repro.faults import audit

        report = audit.run_audit()
        print(f"invariant audit: {report['checks']} checks")
        if report["violations"]:
            for violation in report["violations"]:
                print(f"  VIOLATION {violation}")
            return 1
        print("  all invariants hold")
        return 0

    config = _build_config(args)
    trace = get_workload(args.app, config, footprint_mb=args.footprint_mb)
    plan = _resolve_fault_plan(args.plan, config, trace)
    faulted_config = config.replace(fault_plan=plan)
    policies = args.policy or ["oasis"]
    print(f"fault plan {plan.digest()} on {args.app} "
          f"(first fault at phase {plan.first_fault_phase})")
    print(f"{'policy':<16s} {'healthy(ms)':>12s} {'faulted(ms)':>12s} "
          f"{'slowdown':>9s} {'retries':>8s} {'fallbk':>7s} "
          f"{'reroute':>8s} {'retired':>8s}")
    for name in policies:
        healthy = simulate(config, trace, make_policy(name))
        faulted = simulate(faulted_config, trace, make_policy(name))
        slowdown = faulted.total_time_ns / healthy.total_time_ns
        print(f"{name:<16s} {healthy.total_time_ns / 1e6:>12.2f} "
              f"{faulted.total_time_ns / 1e6:>12.2f} {slowdown:>8.2f}x "
              f"{int(faulted.migration_retries):>8d} "
              f"{int(faulted.migration_fallbacks):>7d} "
              f"{int(faulted.reroutes):>8d} "
              f"{int(faulted.retired_pages):>8d}")
    return 0


def _configure_runner(args) -> None:
    from repro.harness import configure

    kwargs = {}
    if hasattr(args, "no_memo"):
        # Sweep-style commands run the sweep fast path by default
        # (--no-memo opts out); --memo-dir adds a persistent snapshot
        # tier on top of the in-memory one.
        kwargs["memo"] = not args.no_memo
        kwargs["memo_dir"] = getattr(args, "memo_dir", None)
    configure(
        jobs=getattr(args, "jobs", None),
        disk_cache=not getattr(args, "no_cache", False),
        **kwargs,
    )


def cmd_experiment(args) -> int:
    _configure_runner(args)
    apps = args.apps.split(",") if args.apps else None
    ids = sorted(EXPERIMENTS) if args.id == "all" else [args.id]
    for exp_id in ids:
        result = run_experiment(exp_id, apps=apps)
        print(result.render())
        print()
        if args.save:
            path = result.save(Path(args.save))
            print(f"saved to {path}")
    return 0


def cmd_reproduce(args) -> int:
    from repro.artifacts.pipeline import run_from_args

    return run_from_args(args)


def cmd_list(_args) -> int:
    print("applications (Table II):")
    for app in APPLICATION_ORDER:
        info = APPLICATIONS[app]
        print(f"  {app:<9s} {info.full_name:<34s} {info.suite:<11s} "
              f"{info.pattern:<15s} {info.n_objects:>3d} objects  "
              f"{info.footprint_for(4):>4d} MB")
    print("\npolicies:")
    for name in POLICY_FACTORIES:
        print(f"  {name}")
    print("\nexperiments:")
    for exp_id, fn in sorted(EXPERIMENTS.items()):
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:<8s} {doc}")
    return 0


def cmd_sweep(args) -> int:
    _configure_runner(args)
    config = _build_config(args)
    if getattr(args, "fault_plan", None):
        # One plan across many apps: resolved without a trace, so
        # trace-dependent presets (e.g. retired-pages) are rejected here.
        plan = _resolve_fault_plan(args.fault_plan, config, trace=None)
        config = config.replace(fault_plan=plan)
    mixes = (
        [m.strip() for m in args.tenants.split(",") if m.strip()]
        if getattr(args, "tenants", None) else []
    )
    apps = (
        [a.strip() for a in args.apps.split(",") if a.strip()]
        if args.apps else (mixes if mixes else list(APPLICATION_ORDER))
    )
    for mix_name in mixes:
        if mix_name not in apps:
            apps.append(mix_name)
    policies = args.policy or ["on_touch", "access_counter", "duplication",
                               "ideal", "grit", "oasis"]
    from repro.harness import (
        last_sweep_summary,
        run_sims_parallel,
        speedup_table,
    )

    footprints = (
        {a: args.footprint_mb for a in apps} if args.footprint_mb else None
    )
    summary = None
    if args.metrics_out:
        # Drive every cell through run_sims_parallel so the sweep-level
        # observability summary covers the whole table (the speedup_table
        # call below then hits the warm cache — capture the summary now,
        # before that warm pass overwrites it).
        requests = []
        for app in apps:
            mb = footprints.get(app) if footprints else None
            for policy in policies:
                requests.append((config, app, policy, {"footprint_mb": mb}))
        run_sims_parallel(requests)
        summary = last_sweep_summary()
    rows, geo = speedup_table(
        config, apps, policies, footprint_mb=footprints,
    )
    header = f"{'app':<10s}" + "".join(f"{p[:12]:>13s}" for p in policies)
    print(header)
    for row in rows:
        print(f"{row[0]:<10s}" + "".join(f"{v:13.2f}" for v in row[1:]))
    from repro.harness import memo_stats

    memo = memo_stats()
    if memo["enabled"]:
        print(f"\nsweep fast path: {memo['hits']} snapshot hits, "
              f"{memo['misses']} misses, {memo['prefix_forks']} prefix "
              f"forks, {memo['resumed_phases']} phases resumed, "
              f"{memo['snapshot_bytes'] / 1e6:.1f} MB stored"
              + (f", {memo['corrupt']} quarantined"
                 if memo["corrupt"] else ""))
    if mixes:
        from repro.tenancy import mix_fairness

        fairness = {}
        for mix_name in mixes:
            for policy in policies:
                report = mix_fairness(
                    config, mix_name, policy,
                    footprint_mb=args.footprint_mb,
                )
                fairness[f"{mix_name}/{policy}"] = report
        print("\nfairness (per-tenant slowdown vs solo):")
        for key, report in fairness.items():
            slows = ", ".join(
                f"{t}={s:.2f}x"
                for t, s in sorted(report["slowdown"].items())
            )
            print(f"  {key:<24s} weighted_speedup="
                  f"{report['weighted_speedup']:.2f} "
                  f"unfairness={report['unfairness']:.2f}  {slows}")
        if summary is not None:
            summary["fairness"] = fairness
    if args.metrics_out:
        import json

        path = Path(args.metrics_out)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"\nsweep summary written to {path} "
              f"({summary['runs']} runs, {summary['failed']} failed, "
              f"{summary['wall_clock_s']['total']:.2f}s)")
    if args.trace_out:
        from repro.obs import MetricsRegistry, RecordingTracer, write_chrome_trace

        out_dir = Path(args.trace_out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for app in apps:
            mb = footprints.get(app) if footprints else None
            workload = get_workload(app, config, footprint_mb=mb)
            for policy in policies:
                tracer = RecordingTracer()
                simulate(
                    config, workload, make_policy(policy),
                    tracer=tracer, metrics=MetricsRegistry(),
                )
                path = out_dir / f"{app}.{policy}.trace.json"
                write_chrome_trace(
                    path, tracer, {"workload": app, "policy": policy}
                )
        print(f"per-run traces written to {out_dir}/ "
              f"({len(apps) * len(policies)} files)")
    return 0


def cmd_trace(args) -> int:
    """Record one observed run and export its timeline."""
    from repro.obs import (
        MetricsRegistry,
        RecordingTracer,
        write_chrome_trace,
        write_jsonl,
        write_prometheus,
    )

    config = _build_config(args)
    trace = get_workload(args.app, config, footprint_mb=args.footprint_mb)
    if getattr(args, "fault_plan", None):
        plan = _resolve_fault_plan(args.fault_plan, config, trace)
        config = config.replace(fault_plan=plan)
    tracer, metrics = RecordingTracer(), MetricsRegistry()
    result = simulate(
        config, trace, make_policy(args.policy),
        tracer=tracer, metrics=metrics,
    )
    out = Path(args.out or f"{args.app}.{args.policy}.trace.json")
    write_chrome_trace(out, tracer, {
        "workload": args.app,
        "policy": args.policy,
        "n_gpus": config.n_gpus,
    })
    totals = tracer.event_totals()
    rendered = ", ".join(f"{k}={v}" for k, v in sorted(totals.items()))
    print(f"{args.app}/{args.policy}: "
          f"time={result.total_time_ns / 1e6:.2f} ms  "
          f"{len(tracer)} trace events on {len(tracer.tracks())} tracks")
    print(f"  instants: {rendered}")
    print(f"  trace written to {out} (load in Perfetto or chrome://tracing)")
    if args.jsonl:
        write_jsonl(args.jsonl, tracer)
        print(f"  event log written to {args.jsonl}")
    if args.metrics_out:
        write_prometheus(args.metrics_out, metrics.snapshot())
        print(f"  metrics written to {args.metrics_out}")
    return 0


def cmd_verify(args) -> int:
    """Simulator-wide verification (see :mod:`repro.verify`)."""
    apps = (
        tuple(a.strip() for a in args.apps.split(",") if a.strip())
        if args.apps else None
    )
    policies = tuple(args.policy) if args.policy else None
    jobs = args.jobs or 1
    failed = False

    if args.update_golden:
        from repro.verify import golden

        summary = golden.update_golden(
            apps=apps, policies=policies, seed=args.seed, jobs=jobs,
        )
        print(f"golden: pinned {summary['pinned']} entries "
              f"({len(summary['added'])} added, "
              f"{len(summary['changed'])} changed)")
        for key in summary["changed"]:
            print(f"  repinned {key}")
        print(f"  written to {golden.GOLDEN_PATH}")
        return 0

    run_all = not (
        args.invariants or args.differential or args.golden or args.fuzz
    )

    if args.invariants or run_all:
        from repro.verify import run_invariant_suite

        kwargs = {}
        if apps is not None:
            kwargs["apps"] = apps
        if policies is not None:
            kwargs["policies"] = policies
        report = run_invariant_suite(**kwargs)
        print(f"invariants: {report['checks']} runs, "
              f"{report['phases']} phase boundaries checked")
        for violation in report["violations"]:
            print(f"  VIOLATION {violation}")
        failed |= bool(report["violations"])

    if args.differential or run_all:
        from repro.verify import differential

        lanes = (
            tuple(
                lane.strip()
                for lane in args.lanes.split(",")
                if lane.strip()
            )
            if getattr(args, "lanes", None) else None
        )
        report = differential.run_differential(
            apps=apps if apps is not None else differential.DEFAULT_APPS,
            policies=policies,
            seed=args.seed,
            jobs=max(2, jobs),
            lanes=lanes,
        )
        print(f"differential: {report['comparisons']} comparisons over "
              f"{report['pairs']} pairs ({', '.join(report['lanes'])})")
        for mismatch in report["mismatches"]:
            print(f"  MISMATCH {mismatch}")
        failed |= bool(report["mismatches"])

    if args.golden or run_all:
        from repro.verify import golden

        try:
            report = golden.check_golden(
                apps=apps, policies=policies, seed=args.seed, jobs=jobs,
            )
        except FileNotFoundError:
            print(f"golden: {golden.GOLDEN_PATH} missing — "
                  "run `make golden-update` once to pin baselines")
            failed = True
        else:
            print(f"golden: {report['checked']} entries checked")
            for key in report["missing"]:
                print(f"  MISSING {key} (pin with `make golden-update`)")
            for mismatch in report["mismatches"]:
                print(f"  DRIFT {mismatch}")
            failed |= bool(report["missing"] or report["mismatches"])

    if args.fuzz or run_all:
        from repro.verify import fuzz

        tenancy = getattr(args, "tenancy", False)
        runner = fuzz.run_tenancy_fuzz if tenancy else fuzz.run_fuzz
        report = runner(
            seed=args.seed, cases=args.cases, budget_s=args.budget,
        )
        label = "tenancy fuzz" if tenancy else "fuzz"
        print(f"{label}: {report['cases']} cases in "
              f"{report['elapsed_s']:.1f}s")
        for finding in report["failures"]:
            print(f"  FAILURE (seed {finding.seed}, shrunk to "
                  f"{finding.n_records} record(s)): {finding.failure}")
            print(f"  repro: {finding.command}")
            print("  minimal TraceBuilder program:")
            for line in finding.program.rstrip().splitlines():
                print(f"    {line}")
        failed |= bool(report["failures"])

    if failed:
        return 1
    print("verify: all checks passed")
    return 0


def cmd_serve(args) -> int:
    """Run the single-flight simulation service until interrupted."""
    import asyncio

    from repro.harness import configure
    from repro.serve import SimulationService
    from repro.serve.http import run_server

    configure(
        jobs=args.jobs or 1,
        disk_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    service = SimulationService(
        jobs=args.jobs or 1,
        max_pending=args.max_pending,
        batch_max=args.batch_max,
        run_timeout_s=args.run_timeout_s,
        journal_dir=args.journal_dir,
        name=args.worker_name,
    )
    try:
        asyncio.run(run_server(
            service, args.host, args.port,
            drain_timeout_s=args.drain_timeout_s,
            ready_file=args.ready_file,
            register_url=args.register,
            worker_name=args.worker_name,
        ))
    except KeyboardInterrupt:
        print("\nrepro-oasis serve: shut down")
    return 0


def cmd_cluster(args) -> int:
    """Run a router plus N serve worker subprocesses until interrupted."""
    import os

    from repro.cluster import LocalCluster, run_cluster_forever

    if args.no_fsync:
        os.environ["REPRO_NO_FSYNC"] = "1"
    cluster = LocalCluster(
        workers=args.workers,
        state_dir=args.state_dir,
        host=args.host,
        router_port=args.port,
        jobs=args.jobs or 1,
        max_pending=args.max_pending,
        max_inflight=args.max_inflight,
    )
    return run_cluster_forever(cluster)


def cmd_chaos(args) -> int:
    """Run the kill-restart-recover soak under injected faults."""
    import json
    import os
    import tempfile

    from repro.chaos import run_soak
    from repro.chaos.soak import DEFAULT_APPS, DEFAULT_POLICIES

    if args.no_fsync:
        os.environ["REPRO_NO_FSYNC"] = "1"
    state_dir = Path(args.state_dir or tempfile.mkdtemp(prefix="repro-chaos-"))
    report = run_soak(
        state_dir / "journal",
        state_dir / "cache",
        cycles=args.cycles,
        seed=args.seed,
        apps=args.apps.split(",") if args.apps else DEFAULT_APPS,
        policies=args.policies.split(",") if args.policies else DEFAULT_POLICIES,
        jobs=args.jobs or 1,
        resubmit_limit=args.resubmit_limit,
    )
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"chaos: report written to {args.json_out}")
    for cycle in report["per_cycle"]:
        fired = sum(cycle["chaos"]["events_fired"].values())
        print(
            f"cycle {cycle['cycle']}: plan {cycle['plan']} "
            f"acked={cycle['acked']} pre-crash={cycle['completed_before_crash']} "
            f"cached={cycle['recovery'].get('recovered_cached', 0)} "
            f"requeued={cycle['recovery'].get('recovered_requeued', 0)} "
            f"torn={cycle['recovery'].get('journal_torn', 0)} "
            f"events_fired={fired} resubmitted={cycle['resubmitted']}"
        )
    print(
        f"chaos: {report['cycles']} cycle(s), {report['acked']} acked, "
        f"{report['refused']} refused, lost={len(report['lost'])}, "
        f"mismatched={len(report['mismatched'])}, "
        f"unrecovered={len(report['unrecovered_failures'])}"
    )
    if not report["ok"]:
        for label in report["lost"]:
            print(f"  LOST: {label}")
        for label in report["mismatched"]:
            print(f"  MISMATCH: {label}")
        for label in report["unrecovered_failures"]:
            print(f"  UNRECOVERED: {label}")
        print("chaos: FAILED")
        return 1
    print("chaos: all invariants held (no acked job lost, all results "
          "bit-identical to golden)")
    return 0


def cmd_submit(args) -> int:
    """Submit one run to a running service and print the result."""
    from repro.serve.client import ClientError, ServeClient, ServerBusy

    client = ServeClient(args.host, args.port, timeout_s=args.timeout_s)
    try:
        if args.no_wait:
            job = client.submit_nowait(
                args.app, args.policy,
                footprint_mb=args.footprint_mb, seed=args.seed,
                lane=args.lane, deadline_s=args.deadline_s,
            )
            print(f"accepted {job['id']} (lane {job['lane']}, "
                  f"status {job['status']}); poll with "
                  f"GET /jobs/{job['id']}")
            return 0
        result = client.submit(
            args.app, args.policy,
            footprint_mb=args.footprint_mb, seed=args.seed,
            lane=args.lane, deadline_s=args.deadline_s,
        )
    except ServerBusy as busy:
        print(f"server busy: {busy}; retry after {busy.retry_after_s:g}s")
        return 2
    except (ClientError, ConnectionError, OSError) as err:
        print(f"submit failed: {err}")
        return 1
    print(f"{args.app}/{args.policy}: "
          f"time={result.total_time_ns / 1e6:.2f} ms  "
          f"faults={int(result.total_faults)}  "
          f"migrations={int(result.migrations)}  "
          f"duplications={int(result.duplications)}")
    return 0


def cmd_characterize(args) -> int:
    config = baseline_config()
    trace = get_workload(args.app, config)
    cls = classify_pages(trace)
    shares = access_share_by_object(trace)
    print(f"{args.app}: {trace.n_objects} objects, "
          f"{trace.footprint_bytes / 2**20:.1f} MB")
    for obj in sorted(trace.objects, key=lambda o: -shares[o.name])[:20]:
        pattern = classify_object(trace, obj, cls)
        print(f"  {obj.name:<24s} {pattern.label:<22s} "
              f"{100 * shares[obj.name]:5.1f}% of accesses")
    return 0


def _app_or_mix(value: str) -> str:
    """Parse-time validation for APP args that also accept tenant mixes."""
    if value in APPLICATIONS:
        return value
    known = ", ".join(sorted(APPLICATIONS))
    if "+" in value:
        from repro.tenancy.mix import parse_mix

        try:
            mix = parse_mix(value)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from exc
        for tenant in mix.tenants:
            if tenant.app not in APPLICATIONS:
                raise argparse.ArgumentTypeError(
                    f"unknown application {tenant.app!r} in mix "
                    f"{value!r}; known: {known}"
                )
        return value
    raise argparse.ArgumentTypeError(
        f"unknown application {value!r}; known: {known}"
    )


def build_parser() -> argparse.ArgumentParser:
    from repro.artifacts.pipeline import add_pipeline_arguments

    parser = argparse.ArgumentParser(
        prog="repro-oasis",
        description="OASIS (HPCA 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate an application")
    sim.add_argument("app", metavar="APP", type=_app_or_mix,
                     help="registry application "
                          f"({', '.join(sorted(APPLICATIONS))}) or a "
                          "multi-tenant mix like mm+bfs")
    sim.add_argument("--policy", action="append",
                     choices=sorted(POLICY_FACTORIES),
                     help="repeatable; first one is the baseline "
                          "(default: on_touch oasis)")
    sim.add_argument("--gpus", type=int, default=None)
    sim.add_argument("--footprint-mb", type=float, default=None,
                     dest="footprint_mb")
    sim.add_argument("--large-pages", action="store_true")
    sim.add_argument("--distributed", action="store_true")
    sim.add_argument("--oversubscription", type=float, default=None)
    sim.add_argument("--reset-threshold", type=int, default=None)
    sim.add_argument("--fault-plan", default=None, dest="fault_plan",
                     help="inject faults: preset name, inline JSON, or "
                          "@file.json (see 'faults' subcommand)")
    sim.add_argument("--trace", default=None, dest="trace_out",
                     metavar="FILE",
                     help="export a Chrome trace_event timeline per "
                          "policy (multi-policy runs get FILE.<policy>)")
    sim.add_argument("--metrics-out", default=None, dest="metrics_out",
                     metavar="FILE",
                     help="export Prometheus-style metrics per policy")
    sim.set_defaults(func=cmd_simulate)

    exp = sub.add_parser("experiment", help="regenerate a table/figure")
    exp.add_argument("id", choices=[*sorted(EXPERIMENTS), "all"])
    exp.add_argument("--apps", default=None)
    exp.add_argument("--save", default="results")
    exp.add_argument("--jobs", type=int, default=None,
                     help="worker processes for independent runs")
    exp.add_argument("--no-cache", action="store_true", dest="no_cache",
                     help="skip the persistent result cache")
    exp.set_defaults(func=cmd_experiment)

    rpr = sub.add_parser(
        "reproduce",
        help="reproduce every table/figure into an artifact dir",
        description="One-command reproduce-all: run every bench_fig*/"
                    "bench_table* experiment through the parallel "
                    "harness (disk cache + sweep memoization), writing "
                    "manifest.json / metrics.jsonl / summary.json plus "
                    "results/BENCH_all.json.  Resumable: re-invoking "
                    "the same profile skips recorded experiments and "
                    "serves re-run cells from the result cache.",
    )
    add_pipeline_arguments(rpr)
    rpr.set_defaults(func=cmd_reproduce)

    swp = sub.add_parser("sweep",
                         help="speedup table: apps x policies vs on-touch")
    swp.add_argument("--apps", default=None)
    swp.add_argument("--tenants", default=None,
                     help="comma-separated multi-tenant mixes (e.g. "
                          "mm+bfs,mm+bfs+i2c+st) swept alongside --apps; "
                          "also prints per-tenant fairness vs solo runs")
    swp.add_argument("--policy", action="append",
                     choices=sorted(POLICY_FACTORIES))
    swp.add_argument("--gpus", type=int, default=None)
    swp.add_argument("--footprint-mb", type=float, default=None,
                     dest="footprint_mb")
    swp.add_argument("--large-pages", action="store_true")
    swp.add_argument("--distributed", action="store_true")
    swp.add_argument("--oversubscription", type=float, default=None)
    swp.add_argument("--reset-threshold", type=int, default=None)
    swp.add_argument("--jobs", type=int, default=None,
                     help="worker processes for independent runs")
    swp.add_argument("--no-cache", action="store_true", dest="no_cache",
                     help="skip the persistent result cache")
    swp.add_argument("--no-memo", action="store_true", dest="no_memo",
                     help="disable the sweep fast path (phase-prefix "
                          "snapshot memoization; on by default)")
    swp.add_argument("--memo-dir", default=None, dest="memo_dir",
                     metavar="DIR",
                     help="persist phase snapshots under DIR so later "
                          "sweeps resume across processes")
    swp.add_argument("--fault-plan", default=None, dest="fault_plan",
                     help="inject faults into every run: preset name, "
                          "inline JSON, or @file.json (trace-dependent "
                          "presets are not accepted here)")
    swp.add_argument("--trace", default=None, dest="trace_out",
                     metavar="DIR",
                     help="re-run each app x policy cell under the "
                          "tracer and write DIR/<app>.<policy>.trace.json")
    swp.add_argument("--metrics-out", default=None, dest="metrics_out",
                     metavar="FILE",
                     help="write the sweep observability summary "
                          "(runs, cache hits, retries, wall clock, "
                          "merged counters) as JSON")
    swp.set_defaults(func=cmd_sweep)

    lst = sub.add_parser("list", help="list apps, policies, experiments")
    lst.set_defaults(func=cmd_list)

    flt = sub.add_parser(
        "faults",
        help="compare healthy vs fault-injected runs, or audit invariants",
    )
    flt.add_argument("app", nargs="?", default="st",
                     choices=sorted(APPLICATIONS))
    flt.add_argument("--policy", action="append",
                     choices=sorted(POLICY_FACTORIES),
                     help="repeatable (default: oasis)")
    flt.add_argument("--plan", default="degraded-link",
                     help="preset name, inline JSON, or @file.json "
                          "(default: degraded-link)")
    flt.add_argument("--gpus", type=int, default=None)
    flt.add_argument("--footprint-mb", type=float, default=None,
                     dest="footprint_mb")
    flt.add_argument("--audit", action="store_true",
                     help="run the machine-invariant audit instead of a "
                          "comparison")
    flt.set_defaults(func=cmd_faults)

    trc = sub.add_parser(
        "trace",
        help="record one run and export a Perfetto-loadable timeline",
    )
    trc.add_argument("app", choices=sorted(APPLICATIONS))
    trc.add_argument("--policy", default="oasis",
                     choices=sorted(POLICY_FACTORIES))
    trc.add_argument("--out", default=None, metavar="FILE",
                     help="Chrome trace_event JSON path "
                          "(default: <app>.<policy>.trace.json)")
    trc.add_argument("--jsonl", default=None, metavar="FILE",
                     help="also write a JSONL event log")
    trc.add_argument("--metrics-out", default=None, dest="metrics_out",
                     metavar="FILE",
                     help="also write Prometheus-style metrics")
    trc.add_argument("--gpus", type=int, default=None)
    trc.add_argument("--footprint-mb", type=float, default=None,
                     dest="footprint_mb")
    trc.add_argument("--large-pages", action="store_true")
    trc.add_argument("--distributed", action="store_true")
    trc.add_argument("--oversubscription", type=float, default=None)
    trc.add_argument("--reset-threshold", type=int, default=None)
    trc.add_argument("--fault-plan", default=None, dest="fault_plan",
                     help="inject faults: preset name, inline JSON, or "
                          "@file.json")
    trc.set_defaults(func=cmd_trace)

    ver = sub.add_parser(
        "verify",
        help="simulator-wide verification: invariants, differential "
             "oracles, golden digests, fuzzing",
    )
    ver.add_argument("--invariants", action="store_true",
                     help="phase-boundary invariant suite only")
    ver.add_argument("--differential", action="store_true",
                     help="differential oracle lanes only")
    ver.add_argument("--golden", action="store_true",
                     help="golden-digest regression check only")
    ver.add_argument("--fuzz", action="store_true",
                     help="seeded random trace/config fuzzing (failures "
                          "are shrunk to a minimal TraceBuilder program)")
    ver.add_argument("--tenancy", action="store_true",
                     help="with --fuzz: fuzz two-tenant mixes through "
                          "the trace interleaver and per-tenant "
                          "accounting instead of solo traces")
    ver.add_argument("--update-golden", action="store_true",
                     dest="update_golden",
                     help="recompute and re-pin the golden digests "
                          "instead of checking them")
    ver.add_argument("--seed", type=int, default=0,
                     help="base seed for fuzzing/differential runs; "
                          "fuzz case i uses seed+i")
    ver.add_argument("--cases", type=int, default=None,
                     help="number of fuzz cases (default 50 unless "
                          "--budget is given)")
    ver.add_argument("--budget", type=float, default=None,
                     help="fuzz wall-clock budget in seconds")
    ver.add_argument("--apps", default=None,
                     help="comma-separated app subset (default: lanes' "
                          "own defaults; golden uses the full registry)")
    ver.add_argument("--lanes", default=None,
                     help="comma-separated differential lane subset "
                          "(fast_slow, cache, traced, faultplan, "
                          "parallel, memo, tenancy; default: all)")
    ver.add_argument("--policy", action="append",
                     choices=sorted(POLICY_FACTORIES),
                     help="repeatable policy subset (default: all)")
    ver.add_argument("--jobs", type=int, default=None,
                     help="worker processes for golden/differential runs")
    ver.set_defaults(func=cmd_verify)

    srv = sub.add_parser(
        "serve",
        help="run the single-flight simulation service (HTTP front end)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8343,
                     help="TCP port (0 = ephemeral; default 8343)")
    srv.add_argument("--jobs", type=int, default=None,
                     help="worker processes per dispatched batch")
    srv.add_argument("--max-pending", type=int, default=256,
                     dest="max_pending",
                     help="admission-control bound on queued jobs")
    srv.add_argument("--batch-max", type=int, default=16, dest="batch_max",
                     help="max jobs handed to the pool per dispatch round")
    srv.add_argument("--run-timeout-s", type=float, default=None,
                     dest="run_timeout_s",
                     help="per-run wall-clock cap (needs --jobs >= 2)")
    srv.add_argument("--no-cache", action="store_true", dest="no_cache",
                     help="skip the persistent result cache")
    srv.add_argument("--journal-dir", default=None, dest="journal_dir",
                     help="write-ahead job journal directory; accepted "
                          "jobs survive crashes and are recovered on "
                          "the next start")
    srv.add_argument("--drain-timeout-s", type=float, default=None,
                     dest="drain_timeout_s",
                     help="max seconds a SIGTERM drain waits for queued "
                          "jobs before stopping (default: no limit)")
    srv.add_argument("--cache-dir", default=None, dest="cache_dir",
                     help="result cache directory (cluster workers point "
                          "this at the shared tier)")
    srv.add_argument("--ready-file", default=None, dest="ready_file",
                     help="write {url, pid, name} JSON here once the "
                          "port is bound (used by the cluster supervisor)")
    srv.add_argument("--register", default=None,
                     help="cluster router URL to announce this worker to "
                          "(POST /register)")
    srv.add_argument("--worker-name", default=None, dest="worker_name",
                     help="stable worker identity on the cluster ring")
    srv.set_defaults(func=cmd_serve)

    clu = sub.add_parser(
        "cluster",
        help="run a consistent-hash router plus N serve workers "
             "(shared result store, heartbeat, job stealing)",
    )
    clu.add_argument("--workers", type=int, default=4,
                     help="serve worker subprocesses (default 4)")
    clu.add_argument("--host", default="127.0.0.1")
    clu.add_argument("--port", type=int, default=8400,
                     help="router TCP port (0 = ephemeral; default 8400)")
    clu.add_argument("--jobs", type=int, default=None,
                     help="worker processes per dispatched batch, per "
                          "serve worker")
    clu.add_argument("--max-pending", type=int, default=256,
                     dest="max_pending",
                     help="per-worker admission bound on queued jobs")
    clu.add_argument("--max-inflight", type=int, default=128,
                     dest="max_inflight",
                     help="router cap on concurrently forwarded requests "
                          "(lane shedding fractions apply under it)")
    clu.add_argument("--state-dir", default=None, dest="state_dir",
                     help="directory for the shared cache, per-worker "
                          "journals and logs (default: a fresh temp dir)")
    clu.add_argument("--no-fsync", action="store_true", dest="no_fsync",
                     help="skip fsync barriers for speed (benchmarks)")
    clu.set_defaults(func=cmd_cluster)

    chs = sub.add_parser(
        "chaos",
        help="soak the durable serve layer with injected infrastructure "
             "faults (kill-restart-recover cycles)",
    )
    chs.add_argument("--cycles", type=int, default=3,
                     help="kill-restart-recover rounds (default 3)")
    chs.add_argument("--seed", type=int, default=0,
                     help="chaos-plan seed (cycle i uses seed+i)")
    chs.add_argument("--apps", default=None,
                     help="comma-separated app subset (default st,mm)")
    chs.add_argument("--policies", default=None,
                     help="comma-separated policy subset "
                          "(default oasis,on_touch)")
    chs.add_argument("--jobs", type=int, default=None,
                     help="worker processes per dispatched batch")
    chs.add_argument("--resubmit-limit", type=int, default=3,
                     dest="resubmit_limit",
                     help="client retries for jobs served a chaos failure")
    chs.add_argument("--state-dir", default=None, dest="state_dir",
                     help="directory holding the shared journal + cache "
                          "(default: a fresh temp dir)")
    chs.add_argument("--no-fsync", action="store_true", dest="no_fsync",
                     help="skip fsync barriers for speed (CI soak)")
    chs.add_argument("--json", default=None, dest="json_out",
                     help="write the full soak report to this JSON file")
    chs.set_defaults(func=cmd_chaos)

    sbm = sub.add_parser(
        "submit",
        help="submit one run to a running serve instance",
    )
    sbm.add_argument("app", choices=sorted(APPLICATIONS))
    sbm.add_argument("--policy", default="oasis",
                     choices=sorted(POLICY_FACTORIES))
    sbm.add_argument("--host", default="127.0.0.1")
    sbm.add_argument("--port", type=int, default=8343)
    sbm.add_argument("--footprint-mb", type=float, default=None,
                     dest="footprint_mb")
    sbm.add_argument("--seed", type=int, default=0)
    sbm.add_argument("--lane", default="batch",
                     choices=["interactive", "batch", "bulk"])
    sbm.add_argument("--deadline-s", type=float, default=None,
                     dest="deadline_s",
                     help="per-job deadline; expired jobs fail instead "
                          "of running")
    sbm.add_argument("--timeout-s", type=float, default=300.0,
                     dest="timeout_s", help="client HTTP timeout")
    sbm.add_argument("--no-wait", action="store_true", dest="no_wait",
                     help="return the job id immediately instead of "
                          "waiting for the result")
    sbm.set_defaults(func=cmd_submit)

    cha = sub.add_parser("characterize", help="Section IV object analysis")
    cha.add_argument("app", choices=sorted(APPLICATIONS))
    cha.set_defaults(func=cmd_characterize)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "simulate" and not args.policy:
        args.policy = ["on_touch", "oasis"]
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
