"""Local cluster supervisor: one router, N worker subprocesses.

:class:`LocalCluster` is what ``repro-oasis cluster --workers N`` and
the cluster bench/tests run: it hosts a :class:`ClusterRouter` (with
its HTTP front end) on a background event loop in *this* process and
spawns each worker as a real ``repro-oasis serve`` subprocess.

Workers must be separate processes, not threads: the harness's
parallel runner keeps module-global caches and a module-global sweep
summary, so two services dispatching in one interpreter would race.
A subprocess per worker also makes worker death honest — the chaos
layer kills with ``SIGKILL`` and the journal-steal path recovers from
an actual dead process image, not a simulated one.

Layout under ``state_dir``::

    cache/                shared result tier (workers + router)
    journals/<name>/      per-worker write-ahead job journal
    ready-<name>.json     worker ready files ({"url", "pid", "name"})
    <name>.log            worker stdout/stderr

Workers find the router through ``--register``: each one announces its
name, URL and journal directory to ``POST /register`` once its port is
bound, so the supervisor only has to wait for the registry to fill.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro.cluster.router import ClusterRouter, RouterHttpServer
from repro.serve.client import ServeClient

#: Seconds to wait for all workers to register before giving up.
DEFAULT_READY_TIMEOUT_S = 30.0


class ClusterStartupError(RuntimeError):
    """The cluster did not reach its expected worker count in time."""


class LocalCluster:
    """Router in-process (background loop) + N serve subprocesses."""

    def __init__(
        self,
        workers: int = 2,
        *,
        state_dir: str | Path | None = None,
        host: str = "127.0.0.1",
        router_port: int = 0,
        jobs: int = 1,
        max_pending: int = 256,
        store_capacity: int = 256,
        max_inflight: int = 128,
        heartbeat_interval_s: float = 0.25,
        heartbeat_miss_limit: int = 3,
        worker_args: tuple[str, ...] = (),
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.n_workers = workers
        self.host = host
        self.router_port = router_port
        self.jobs = jobs
        self.max_pending = max_pending
        self.worker_args = tuple(worker_args)
        self.state_dir = Path(
            state_dir if state_dir is not None
            else tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.cache_dir = self.state_dir / "cache"
        self.journal_root = self.state_dir / "journals"
        self.state_dir.mkdir(parents=True, exist_ok=True)

        self.router = ClusterRouter(
            store_dir=self.cache_dir,
            store_capacity=store_capacity,
            max_inflight=max_inflight,
            heartbeat_interval_s=heartbeat_interval_s,
            heartbeat_miss_limit=heartbeat_miss_limit,
        )
        self.http: RouterHttpServer | None = None
        self.url: str | None = None
        self.procs: dict[str, subprocess.Popen] = {}
        self._logs: list = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- router hosting ----------------------------------------------------

    def _call(self, coro, timeout_s: float = 30.0):
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout_s)

    def start(self, *, ready_timeout_s: float = DEFAULT_READY_TIMEOUT_S,
              wait_ready: bool = True) -> "LocalCluster":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-cluster-router", daemon=True,
        )
        self._thread.start()
        self.http = RouterHttpServer(
            self.router, host=self.host, port=self.router_port
        )
        self._call(self.http.start())
        self.url = f"http://{self.http.host}:{self.http.port}"
        for index in range(self.n_workers):
            self.spawn_worker(f"w{index}")
        if wait_ready:
            self.wait_ready(timeout_s=ready_timeout_s)
        return self

    def client(self, timeout_s: float | None = 300.0) -> ServeClient:
        assert self.http is not None, "call start() first"
        return ServeClient(self.http.host, self.http.port,
                           timeout_s=timeout_s)

    # -- workers -----------------------------------------------------------

    def _worker_cmd(self, name: str) -> list[str]:
        return [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", self.host, "--port", "0",
            "--jobs", str(self.jobs),
            "--max-pending", str(self.max_pending),
            "--journal-dir", str(self.journal_root / name),
            "--cache-dir", str(self.cache_dir),
            "--ready-file", str(self.state_dir / f"ready-{name}.json"),
            "--register", str(self.url),
            "--worker-name", name,
            *self.worker_args,
        ]

    def spawn_worker(self, name: str) -> subprocess.Popen:
        """Start (or restart) one named worker subprocess."""
        assert self.url is not None, "call start() first"
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        log = open(self.state_dir / f"{name}.log", "a")
        self._logs.append(log)
        proc = subprocess.Popen(
            self._worker_cmd(name),
            stdout=log, stderr=subprocess.STDOUT, env=env,
            cwd=str(self.state_dir),
        )
        self.procs[name] = proc
        return proc

    def wait_ready(self, *, count: int | None = None,
                   timeout_s: float = DEFAULT_READY_TIMEOUT_S) -> None:
        """Block until ``count`` workers are registered and alive."""
        want = count if count is not None else self.n_workers
        client = self.client(timeout_s=5.0)
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                registry = client._json("GET", "/workers")["workers"]
            except OSError:
                registry = {}
            alive = [w for w in registry.values() if w.get("alive")]
            if len(alive) >= want:
                return
            for name, proc in self.procs.items():
                if proc.poll() is not None and name not in registry:
                    raise ClusterStartupError(
                        f"worker {name} exited with {proc.returncode} "
                        f"before registering (see "
                        f"{self.state_dir / f'{name}.log'})"
                    )
            time.sleep(0.05)
        raise ClusterStartupError(
            f"only {len(self.alive_workers())}/{want} workers registered "
            f"within {timeout_s:.0f}s"
        )

    def alive_workers(self) -> list[str]:
        return [
            name for name, proc in self.procs.items()
            if proc.poll() is None
        ]

    def kill_worker(self, name: str, *,
                    sig: int = signal.SIGKILL) -> None:
        """Kill one worker the hard way (chaos worker-kill events)."""
        proc = self.procs.get(name)
        if proc is None or proc.poll() is not None:
            return
        try:
            proc.send_signal(sig)
        except OSError:
            return
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)

    def ready_info(self, name: str) -> dict | None:
        """The worker's ready file ({"url", "pid", "name"}), if written."""
        path = self.state_dir / f"ready-{name}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    # -- shutdown ----------------------------------------------------------

    def stop(self) -> None:
        for proc in self.procs.values():
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + 10
        for proc in self.procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    pass
        if self.http is not None and self._loop is not None:
            try:
                self._call(self.http.stop(), timeout_s=10)
            except (concurrent.futures.TimeoutError, TimeoutError, OSError,
                    RuntimeError) as exc:
                # The HTTP front end failing to stop must not wedge the
                # supervisor teardown (the loop is torn down right
                # below either way), but the failure is observable:
                # counted on the router registry and left on its trace.
                self.router.metrics.inc("cluster.swallowed_errors")
                self.router._emit(
                    "cluster_swallowed_error", where="http_stop",
                    error=f"{type(exc).__name__}: {exc}",
                )
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10)
            self._loop.close()
            self._loop = None
            self._thread = None
        for log in self._logs:
            try:
                log.close()
            except OSError:
                pass
        self._logs.clear()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def run_cluster_forever(cluster: LocalCluster) -> int:
    """CLI body for ``repro-oasis cluster``: run until SIGTERM/SIGINT."""
    shutdown = threading.Event()

    def _signal(_signo, _frame) -> None:
        shutdown.set()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _signal)
        except (ValueError, OSError):
            pass
    try:
        cluster.start()
        print(f"repro-oasis cluster: router at {cluster.url} with "
              f"{cluster.n_workers} worker(s); state in {cluster.state_dir}")
        while not shutdown.is_set():
            shutdown.wait(0.5)
            for name, proc in list(cluster.procs.items()):
                if proc.poll() is not None:
                    # The router's heartbeat already stole its journal;
                    # restart the worker so capacity recovers too.
                    print(f"repro-oasis cluster: worker {name} exited "
                          f"({proc.returncode}); respawning")
                    cluster.spawn_worker(name)
        print("repro-oasis cluster: shutting down")
        return 0
    finally:
        cluster.stop()
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
