"""repro.cluster — shard the simulation service across worker processes.

The PR-5/PR-7 serve layer scales one asyncio process; this package
scales it *out*.  ``repro-oasis cluster --workers N`` runs N real
``repro-oasis serve`` subprocesses behind one router:

* :mod:`repro.cluster.ring` — the consistent-hash ring (SHA-256,
  virtual nodes) that gives every
  :func:`repro.harness.diskcache.cache_key` a deterministic owner, so
  identical requests land on the same worker and single-flight dedup
  stays effective cluster-wide.
* :mod:`repro.cluster.router` — the :class:`ClusterRouter`:
  registration, heartbeat + wedge detection, journal stealing from
  dead workers, lane-aware load shedding, the shared
  :class:`~repro.harness.diskcache.SharedResultStore` fast path, and
  a serve-compatible HTTP surface (:class:`RouterHttpServer`).
* :mod:`repro.cluster.supervisor` — :class:`LocalCluster`, which hosts
  the router and spawns/kills/respawns the worker subprocesses (used
  by the CLI, ``benchmarks/bench_cluster.py`` and the chaos smoke).

Quickstart::

    from repro.cluster import LocalCluster

    with LocalCluster(workers=2) as cluster:
        result = cluster.client().submit("mm", "oasis")
        print(result.total_time_ns)
"""

from repro.cluster.ring import DEFAULT_VNODES, EmptyRingError, HashRing
from repro.cluster.router import (
    DEFAULT_MAX_INFLIGHT,
    LANE_SHED_FRACTIONS,
    ClusterRouter,
    RouterHttpServer,
    Worker,
    run_router,
)
from repro.cluster.supervisor import (
    ClusterStartupError,
    LocalCluster,
    run_cluster_forever,
)

__all__ = [
    "ClusterRouter",
    "ClusterStartupError",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_VNODES",
    "EmptyRingError",
    "HashRing",
    "LANE_SHED_FRACTIONS",
    "LocalCluster",
    "RouterHttpServer",
    "Worker",
    "run_cluster_forever",
    "run_router",
]
