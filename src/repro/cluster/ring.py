"""Consistent-hash ring with virtual nodes.

The cluster router places every request on a worker by hashing its
:func:`repro.harness.diskcache.cache_key` onto a ring of virtual nodes
(``vnodes`` points per worker).  Identical requests therefore always
land on the same worker — which is what keeps the PR-5 single-flight
dedup effective cluster-wide — and when a worker joins or leaves, only
the keys in the arcs it owned move (expected ``1/N`` of the keyspace,
bounded well under ``2/N``), so a membership change never reshuffles
the whole cluster's in-flight affinity.

Determinism is load-bearing: placement is derived from SHA-256 over
stable strings, never from Python's salted ``hash()``, so two router
processes (or a router and a test in another interpreter) always agree
on who owns a key.  :meth:`HashRing.owner` is ``O(log(N * vnodes))``
via bisection.
"""

from __future__ import annotations

import bisect
import hashlib

#: Virtual nodes per worker.  More vnodes smooth the load spread at the
#: cost of a larger (still tiny) ring table.
DEFAULT_VNODES = 128


class EmptyRingError(RuntimeError):
    """A lookup was attempted against a ring with no nodes."""


def ring_hash(data: str) -> int:
    """Stable 64-bit ring position of a string (PYTHONHASHSEED-proof)."""
    digest = hashlib.sha256(data.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes."""

    def __init__(self, nodes=(), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    def add(self, node: str) -> None:
        """Insert ``node``'s virtual points; idempotent."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = ring_hash(f"{node}#{i}")
            at = bisect.bisect_left(self._points, point)
            # SHA-256 collisions between distinct vnode labels are not a
            # practical concern, but keep insertion deterministic anyway:
            # on an equal point, order by owner name.
            while (at < len(self._points) and self._points[at] == point
                   and self._owners[at] < node):
                at += 1
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: str) -> None:
        """Drop ``node``'s virtual points; idempotent."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (p, o) for p, o in zip(self._points, self._owners) if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- placement ---------------------------------------------------------

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise EmptyRingError("hash ring has no nodes")
        at = bisect.bisect_right(self._points, ring_hash(key))
        if at == len(self._points):
            at = 0
        return self._owners[at]

    def lookup(self, key: str, n: int = 1) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise of ``key``'s hash.

        Entry 0 is :meth:`owner`; the rest are the natural failover
        order a router walks when owners die.
        """
        if not self._points:
            raise EmptyRingError("hash ring has no nodes")
        found: list[str] = []
        start = bisect.bisect_right(self._points, ring_hash(key))
        for offset in range(len(self._points)):
            node = self._owners[(start + offset) % len(self._points)]
            if node not in found:
                found.append(node)
                if len(found) >= n:
                    break
        return found

    def spread(self, keys) -> dict[str, int]:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def describe(self) -> dict:
        """JSON view for the router's ``/healthz``."""
        return {
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
            "points": len(self._points),
        }
