"""The cluster router: consistent-hash request placement over N workers.

One :class:`ClusterRouter` fronts a fleet of ``repro-oasis serve``
workers.  Its job is four invariants:

* **Affinity** — every request is keyed by
  :func:`repro.harness.diskcache.cache_key` and placed on the
  :class:`~repro.cluster.ring.HashRing`, so identical requests always
  reach the same worker and the PR-5 single-flight dedup stays
  effective cluster-wide.  The router additionally single-flights
  *waiting* submissions itself, so a 64-identical burst costs one
  forwarded HTTP call, not 64.
* **Shared results** — router and workers share one
  :class:`~repro.harness.diskcache.SharedResultStore` directory.
  Workers persist results through their normal harness store path; the
  router serves repeats straight from the shared tier (LRU first)
  without touching any worker.
* **Liveness** — a heartbeat task polls every worker's ``/healthz``.
  A worker that misses ``heartbeat_miss_limit`` consecutive polls — or
  answers while visibly wedged (its ``oldest_unresolved_age_s`` beyond
  the wedge threshold) — is declared dead, removed from the ring, and
  its journal is **stolen**: the router replays the dead worker's
  write-ahead journal, re-forwards every still-live job to the ring's
  new owners (the new owner journals it as its own accepted work), and
  compacts the dead journal down to whatever could not be re-homed.
  No acknowledged job is lost on worker death.
* **Backpressure** — cluster-level load shedding respects the priority
  lanes: ``interactive`` may use the full forwarding window, ``batch``
  and ``bulk`` progressively less, so bulk traffic can never starve
  interactive work cluster-wide.  Shedding surfaces as HTTP 503 with a
  ``Retry-After`` hint; a worker's own 429 propagates through with its
  hint preserved (see :func:`repro.serve.client.call_with_retry`).

Like :class:`~repro.serve.service.SimulationService`, all routing state
is loop-confined; only blocking HTTP calls to workers leave the loop
via threads.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from urllib.parse import urlparse

from repro import POLICY_FACTORIES, baseline_config
from repro.config import SystemConfig
from repro.cluster.ring import DEFAULT_VNODES, EmptyRingError, HashRing
from repro.harness.diskcache import SharedResultStore, cache_key
from repro.obs import MetricsRegistry, MetricsSnapshot, RecordingTracer
from repro.obs.export import prometheus_multi
from repro.serve.client import (
    ClientError,
    JobFailedError,
    ServeClient,
    ServerBusy,
    call_with_retry,
)
from repro.serve.http import (
    HttpError,
    ServeHttpServer,
    _json_response,
    _response_bytes,
)
from repro.serve.journal import JobJournal
from repro.serve.service import (
    DEFAULT_LANE,
    LANES,
    SERVE_LATENCY_BUCKETS_MS,
    AdmissionError,
    JobFailed,
    JobSpec,
)
from repro.workloads import APPLICATIONS

#: Fraction of the forwarding window each lane may occupy before the
#: router sheds it.  ``interactive`` is never shed below the hard cap;
#: ``bulk`` yields first.
LANE_SHED_FRACTIONS = {"interactive": 1.0, "batch": 0.85, "bulk": 0.6}

#: Default cap on concurrently forwarded waiting requests.
DEFAULT_MAX_INFLIGHT = 128

#: Heartbeat cadence and tolerance.
DEFAULT_HEARTBEAT_INTERVAL_S = 0.5
DEFAULT_HEARTBEAT_MISS_LIMIT = 3

#: A worker whose oldest unresolved job is older than this while its
#: queue is non-empty is treated as wedged (health checks still answer,
#: but nothing completes).
DEFAULT_WEDGE_AGE_S = 600.0

#: Busy-retry attempts per forwarded request before the rejection (and
#: its Retry-After hint) propagates to the router's own client.
DEFAULT_BUSY_RETRIES = 3

#: Chaos-injection hook (see :mod:`repro.chaos.cluster`); None = inert.
_CHAOS = None


@dataclass
class Worker:
    """One registered serve process."""

    name: str
    url: str
    journal_dir: str | None = None
    alive: bool = True
    misses: int = 0
    forwarded: int = 0
    completed: int = 0
    failed: int = 0
    stolen_from: int = 0
    last_health: dict = field(default_factory=dict)

    def client(self, timeout_s: float | None = 300.0) -> ServeClient:
        parsed = urlparse(self.url)
        return ServeClient(parsed.hostname or "127.0.0.1",
                           parsed.port or 80, timeout_s=timeout_s)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "url": self.url,
            "alive": self.alive,
            "misses": self.misses,
            "forwarded": self.forwarded,
            "completed": self.completed,
            "failed": self.failed,
            "stolen_from": self.stolen_from,
            "journal_dir": self.journal_dir,
        }


class ClusterRouter:
    """Consistent-hash front end over registered serve workers."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        store_dir: str | None = None,
        store_capacity: int = 256,
        vnodes: int = DEFAULT_VNODES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_miss_limit: int = DEFAULT_HEARTBEAT_MISS_LIMIT,
        wedge_age_s: float = DEFAULT_WEDGE_AGE_S,
        busy_retries: int = DEFAULT_BUSY_RETRIES,
        forward_timeout_s: float | None = 300.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if heartbeat_miss_limit < 1:
            raise ValueError("heartbeat_miss_limit must be >= 1")
        self.config = config if config is not None else baseline_config()
        self.store = SharedResultStore(store_dir, capacity=store_capacity)
        self.ring = HashRing(vnodes=vnodes)
        self.max_inflight = max_inflight
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_miss_limit = heartbeat_miss_limit
        self.wedge_age_s = wedge_age_s
        self.busy_retries = busy_retries
        self.forward_timeout_s = forward_timeout_s

        self.workers: dict[str, Worker] = {}
        self.metrics = MetricsRegistry()
        self.tracer = RecordingTracer()
        self._route_latency = self.metrics.histogram(
            "cluster.route_ms", SERVE_LATENCY_BUCKETS_MS
        )
        #: key -> future shared by every waiting submission of that key.
        self._inflight: dict[str, asyncio.Future] = {}
        self._forwarding = 0
        self._heartbeat: asyncio.Task | None = None
        self._steals: set[asyncio.Task] = set()
        self._running = False
        self._started_mono: float | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._started_mono = time.monotonic()
        self._heartbeat = asyncio.create_task(
            self._heartbeat_loop(), name="repro-cluster-heartbeat"
        )

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            try:
                await self._heartbeat
            except asyncio.CancelledError:
                pass
            self._heartbeat = None
        for task in list(self._steals):
            try:
                await task
            except asyncio.CancelledError:
                pass
            except (ClientError, JobFailed, AdmissionError, EmptyRingError,
                    OSError, RuntimeError, ValueError) as exc:
                # A steal that dies during shutdown must not block the
                # stop, but it is a real cleanup failure: make it
                # observable instead of dropping it on the floor.
                self.metrics.inc("cluster.swallowed_errors")
                self._emit(
                    "cluster_swallowed_error", where="steal_wait",
                    error=f"{type(exc).__name__}: {exc}",
                )
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(JobFailed({
                    "error_type": "RouterStopped",
                    "message": "router shut down before the job resolved",
                }))
                future.exception()
        self._inflight.clear()

    def _now_ns(self) -> float:
        base = self._started_mono if self._started_mono is not None else 0.0
        return (time.monotonic() - base) * 1e9

    def _emit(self, kind: str, **args) -> None:
        self.tracer.instant("cluster", kind, self._now_ns(), args)

    # -- membership --------------------------------------------------------

    def register(self, name: str, url: str,
                 journal_dir: str | None = None) -> dict:
        """Add (or revive/update) one worker; returns its description.

        Registration is idempotent: a worker that restarts re-registers
        under the same name and simply rejoins the ring, which moves
        only its own arcs back.
        """
        if not name or not url:
            raise ValueError("register needs both 'name' and 'url'")
        worker = self.workers.get(name)
        if worker is None:
            worker = Worker(name=name, url=url, journal_dir=journal_dir)
            self.workers[name] = worker
        else:
            worker.url = url
            if journal_dir:
                worker.journal_dir = journal_dir
            worker.misses = 0
            worker.alive = True
        self.ring.add(name)
        self.metrics.inc("cluster.registered")
        self._emit("cluster_register", worker=name, url=url)
        self._publish_gauges()
        return worker.describe()

    def alive_workers(self) -> list[Worker]:
        return [w for w in self.workers.values() if w.alive]

    def _declare_dead(self, worker: Worker, reason: str) -> None:
        if not worker.alive:
            return
        worker.alive = False
        self.ring.remove(worker.name)
        self.metrics.inc("cluster.workers_died")
        self._emit("cluster_worker_dead", worker=worker.name, reason=reason)
        self._publish_gauges()
        if worker.journal_dir and self._running:
            task = asyncio.create_task(
                self._steal_from(worker),
                name=f"repro-cluster-steal-{worker.name}",
            )
            self._steals.add(task)
            task.add_done_callback(self._steals.discard)

    # -- heartbeat ---------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while self._running:
            await asyncio.sleep(self.heartbeat_interval_s)
            for worker in list(self.alive_workers()):
                try:
                    health = await asyncio.to_thread(
                        worker.client(timeout_s=5.0).health
                    )
                except (ClientError, OSError):
                    worker.misses += 1
                    if worker.misses >= self.heartbeat_miss_limit:
                        self._declare_dead(
                            worker,
                            f"missed {worker.misses} heartbeats",
                        )
                    continue
                worker.misses = 0
                worker.last_health = health
                age = health.get("oldest_unresolved_age_s")
                if (age is not None and age > self.wedge_age_s
                        and health.get("queue_depth", 0) > 0):
                    # Answers health checks but completes nothing: the
                    # /healthz wedge fields exist exactly for this.
                    self._declare_dead(
                        worker, f"wedged ({age:.0f}s oldest unresolved)"
                    )
            self._publish_gauges()

    # -- job stealing ------------------------------------------------------

    async def _steal_from(self, worker: Worker) -> dict:
        """Re-home the dead worker's journaled live jobs.

        Replays its write-ahead journal off-loop, re-submits every live
        job through the normal routing path (the new owner's journal
        records the acceptance — that is the ownership handoff), and
        compacts the dead journal down to whatever could not be
        re-homed, so a restart of the dead worker cannot double-own
        stolen work.
        """
        assert worker.journal_dir is not None
        try:
            live = await asyncio.to_thread(
                self._replay_live_jobs, worker.journal_dir
            )
        except OSError as exc:
            self.metrics.inc("cluster.steal_errors")
            self._emit("cluster_steal_error", worker=worker.name,
                       error=str(exc))
            return {"stolen": 0, "unstolen": 0, "error": str(exc)}
        stolen = 0
        remainder: list[tuple[str, dict]] = []
        for state in live.values():
            data = state["data"]
            spec = data.get("spec")
            lane = data.get("lane", DEFAULT_LANE)
            if not isinstance(spec, dict):
                remainder.append(("accepted", data))
                continue
            try:
                await self.submit(spec, lane=lane, wait=False,
                                  shed_exempt=True)
                stolen += 1
                worker.stolen_from += 1
                self.metrics.inc("cluster.stolen")
                self._emit("cluster_steal", worker=worker.name,
                           job=data.get("job_id"), key=data.get("key"))
            except (AdmissionError, JobFailed, ValueError, EmptyRingError):
                # Could not re-home right now (no live workers, bad
                # spec): keep the record live in the dead journal so a
                # restarted worker still owes the work.
                remainder.append(("accepted", data))
        try:
            await asyncio.to_thread(
                self._compact_journal, worker.journal_dir, remainder
            )
        except OSError:
            self.metrics.inc("cluster.steal_errors")
        summary = {"stolen": stolen, "unstolen": len(remainder)}
        self._emit("cluster_steal_done", worker=worker.name, **summary)
        return summary

    @staticmethod
    def _replay_live_jobs(journal_dir: str) -> dict:
        with JobJournal(journal_dir) as journal:
            return journal.replay().live_jobs()

    @staticmethod
    def _compact_journal(journal_dir: str,
                         live: list[tuple[str, dict]]) -> None:
        with JobJournal(journal_dir) as journal:
            journal.compact(live)

    # -- submission --------------------------------------------------------

    def _resolve(self, payload: dict) -> tuple[JobSpec, str]:
        spec = JobSpec.from_dict(payload)
        if spec.app not in APPLICATIONS:
            raise ValueError(f"unknown app {spec.app!r}")
        if spec.policy not in POLICY_FACTORIES:
            raise ValueError(f"unknown policy {spec.policy!r}")
        config = spec.resolve_config(self.config)
        key = cache_key(
            config, spec.app, spec.policy,
            spec.footprint_mb, spec.seed, spec.policy_kwargs,
        )
        return spec, key

    def route(self, payload: dict) -> dict:
        """Pure placement lookup (``POST /route``): spec -> key + owner."""
        _spec, key = self._resolve(payload)
        try:
            owner = self.ring.owner(key)
        except EmptyRingError:
            owner = None
        return {"key": key, "worker": owner}

    def _shed_check(self, lane: str) -> None:
        window = int(self.max_inflight * LANE_SHED_FRACTIONS[lane])
        if self._forwarding >= max(1, window):
            self.metrics.inc("cluster.shed")
            self.metrics.inc(f"cluster.shed_{lane}")
            self._emit("cluster_shed", lane=lane,
                       forwarding=self._forwarding)
            raise AdmissionError(
                f"cluster forwarding window full for lane {lane!r} "
                f"({self._forwarding}/{self.max_inflight})",
                retry_after_s=1.0,
            )

    async def submit(self, payload: dict, *, lane: str = DEFAULT_LANE,
                     wait: bool = True, deadline_s: float | None = None,
                     shed_exempt: bool = False) -> dict:
        """Route one submission; returns the worker's response payload.

        The response dict always carries ``served_by``: the worker name,
        ``"store"`` for shared-tier hits, or the primary's worker for
        deduplicated waiters.  ``shed_exempt`` is for stolen jobs —
        acknowledged work is never load-shed.
        """
        if not self._running:
            raise RuntimeError("router is not running (call start())")
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane!r}; known: {sorted(LANES)}")
        spec, key = self._resolve(payload)
        self.metrics.inc("cluster.submitted")
        started = time.monotonic()

        cached = await asyncio.to_thread(self.store.load, key)
        if cached is not None:
            self.metrics.inc("cluster.cache_hits")
            self._observe_latency(started)
            self._emit("cluster_cache_hit", key=key)
            return {
                "served_by": "store",
                "job": {"key": key, "status": "done", "lane": lane},
                "result": cached.to_dict(),
            }

        if wait:
            shared = self._inflight.get(key)
            if shared is not None:
                self.metrics.inc("cluster.deduped")
                self._emit("cluster_dedup", key=key)
                payload_out = await asyncio.shield(shared)
                self._observe_latency(started)
                return payload_out

        if not shed_exempt:
            self._shed_check(lane)

        future: asyncio.Future | None = None
        if wait:
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
        self._forwarding += 1
        self._publish_gauges()
        try:
            response = await self._forward(spec, key, lane=lane, wait=wait,
                                           deadline_s=deadline_s)
        except BaseException as exc:
            if future is not None and self._inflight.get(key) is future:
                del self._inflight[key]
                if not future.done():
                    if isinstance(exc, Exception):
                        future.set_exception(exc)
                        future.exception()
                    else:
                        future.cancel()
            raise
        finally:
            self._forwarding -= 1
            self._publish_gauges()
        if wait and "result" in response:
            # The worker already persisted the result to the shared
            # tier; remembering it here only warms the router's LRU.
            await asyncio.to_thread(self._remember, key, response["result"])
        if future is not None:
            if self._inflight.get(key) is future:
                del self._inflight[key]
            if not future.done():
                future.set_result(response)
        self._observe_latency(started)
        return response

    def _remember(self, key: str, result_dict: dict) -> None:
        from repro.sim import SimulationResult

        try:
            self.store.remember(key, SimulationResult.from_dict(result_dict))
        except (KeyError, TypeError, ValueError):
            pass  # an odd payload only costs the LRU warm-up

    def _observe_latency(self, started: float) -> None:
        self._route_latency.observe((time.monotonic() - started) * 1e3)

    async def _forward(self, spec: JobSpec, key: str, *, lane: str,
                       wait: bool, deadline_s: float | None) -> dict:
        """Forward to the ring owner, failing over past dead workers."""
        body = dict(spec.to_dict())
        body.update({"lane": lane, "wait": wait, "deadline_s": deadline_s})
        attempts = max(1, len(self.alive_workers()))
        last_busy: ServerBusy | None = None
        for _attempt in range(attempts):
            try:
                owner = self.ring.owner(key)
            except EmptyRingError:
                break
            worker = self.workers[owner]
            if _CHAOS is not None:
                _CHAOS.on_forward(key, worker.name)
            worker.forwarded += 1
            self.metrics.inc("cluster.forwarded")
            self._emit("cluster_forward", key=key, worker=worker.name,
                       lane=lane, wait=wait)
            client = worker.client(timeout_s=self.forward_timeout_s)
            try:
                response = await asyncio.to_thread(
                    call_with_retry,
                    lambda: client.post("/submit", body),
                    attempts=self.busy_retries,
                )
            except ServerBusy as busy:
                # The worker's own admission control said no after our
                # bounded retries: hand its Retry-After hint through
                # unmodified (the satellite fix this PR depends on).
                last_busy = busy
                break
            except JobFailedError as failed:
                worker.failed += 1
                self.metrics.inc("cluster.job_failures")
                raise JobFailed(failed.failure) from None
            except ClientError as err:
                raise JobFailed({
                    "error_type": f"HTTP{err.status}",
                    "message": str(err),
                }) from None
            except OSError as exc:
                # Connection refused / reset / timeout: the owner is
                # gone.  Declare it dead (which also steals its journal)
                # and walk to the ring's next owner.
                self.metrics.inc("cluster.forward_errors")
                self._declare_dead(worker, f"forward failed: {exc}")
                continue
            worker.completed += 1
            self.metrics.inc("cluster.completed")
            response["served_by"] = worker.name
            return response
        if last_busy is not None:
            raise AdmissionError(
                str(last_busy), retry_after_s=last_busy.retry_after_s,
            ) from last_busy
        raise AdmissionError(
            "no live workers in the cluster", retry_after_s=2.0,
        )

    # -- introspection -----------------------------------------------------

    def _publish_gauges(self) -> None:
        self.metrics.set_gauge(
            "cluster.workers_alive", float(len(self.alive_workers()))
        )
        self.metrics.set_gauge(
            "cluster.workers_known", float(len(self.workers))
        )
        self.metrics.set_gauge("cluster.forwarding", float(self._forwarding))
        self.metrics.set_gauge(
            "cluster.inflight_keys", float(len(self._inflight))
        )
        store = self.store.stats()
        self.metrics.set_gauge("cluster.store_lru_size",
                               float(store["lru_size"]))
        for worker in self.workers.values():
            prefix = f"cluster.worker.{worker.name}"
            self.metrics.set_gauge(f"{prefix}.alive", float(worker.alive))
            self.metrics.set_gauge(f"{prefix}.forwarded",
                                   float(worker.forwarded))
            self.metrics.set_gauge(f"{prefix}.completed",
                                   float(worker.completed))

    def stats(self) -> dict:
        uptime = (
            time.monotonic() - self._started_mono
            if self._started_mono is not None else 0.0
        )
        counters = self.metrics.stats.as_dict()
        return {
            "status": "ok" if self._running else "stopped",
            "uptime_s": round(uptime, 3),
            "workers": {
                name: worker.describe()
                for name, worker in sorted(self.workers.items())
            },
            "ring": self.ring.describe(),
            "store": self.store.stats(),
            "submitted": counters.get("cluster.submitted", 0.0),
            "forwarded": counters.get("cluster.forwarded", 0.0),
            "completed": counters.get("cluster.completed", 0.0),
            "deduped": counters.get("cluster.deduped", 0.0),
            "cache_hits": counters.get("cluster.cache_hits", 0.0),
            "shed": counters.get("cluster.shed", 0.0),
            "stolen": counters.get("cluster.stolen", 0.0),
            "workers_died": counters.get("cluster.workers_died", 0.0),
            "forwarding": self._forwarding,
        }

    def snapshot(self) -> MetricsSnapshot:
        self._publish_gauges()
        return self.metrics.snapshot()

    def prometheus(self) -> str:
        return prometheus_multi({"repro": self.snapshot()})


class RouterHttpServer(ServeHttpServer):
    """HTTP front end for a :class:`ClusterRouter`.

    Reuses the serve layer's request plumbing; only the routes differ:

    * ``GET /healthz`` / ``GET /metrics`` — router health and
      Prometheus text (``repro_cluster_*`` series).
    * ``GET /workers`` — registry + ring placement view.
    * ``POST /register`` — worker announcement (name, url, journal).
    * ``POST /route`` — debugging: spec in, ``{key, worker}`` out.
    * ``POST /submit`` — the serve-compatible submit surface; shed
      requests return **503** (it is the cluster, not one service,
      that is busy) with the ``Retry-After`` hint preserved.
    """

    def __init__(self, router: ClusterRouter, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        super().__init__(router, host=host, port=port)  # type: ignore[arg-type]
        self.router = router

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            writer.write(_json_response(200, self.router.stats()))
        elif path == "/metrics" and method == "GET":
            writer.write(_response_bytes(
                200, self.router.prometheus().encode(),
                "text/plain; version=0.0.4",
            ))
        elif path == "/workers" and method == "GET":
            writer.write(_json_response(200, {
                "workers": {
                    name: worker.describe()
                    for name, worker in sorted(self.router.workers.items())
                },
                "ring": self.router.ring.describe(),
            }))
        elif path == "/register" and method == "POST":
            payload = self._parse_json(body)
            try:
                info = self.router.register(
                    str(payload.get("name", "")),
                    str(payload.get("url", "")),
                    payload.get("journal_dir"),
                )
            except ValueError as bad:
                raise HttpError(400, str(bad)) from None
            writer.write(_json_response(200, {"worker": info}))
        elif path == "/route" and method == "POST":
            payload = self._parse_json(body)
            payload.pop("lane", None)
            payload.pop("wait", None)
            payload.pop("deadline_s", None)
            try:
                writer.write(_json_response(200, self.router.route(payload)))
            except ValueError as bad:
                raise HttpError(400, str(bad)) from None
        elif path == "/submit" and method == "POST":
            await self._submit(body, writer)
        elif path in ("/healthz", "/metrics", "/workers", "/register",
                      "/route", "/submit"):
            raise HttpError(405, f"{method} not allowed on {path}")
        else:
            raise HttpError(404, f"no route for {path}")

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        return payload

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        payload = self._parse_json(body)
        lane = payload.pop("lane", DEFAULT_LANE)
        wait = bool(payload.pop("wait", True))
        deadline_s = payload.pop("deadline_s", None)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
        try:
            response = await self.router.submit(
                payload, lane=lane, wait=wait, deadline_s=deadline_s
            )
        except AdmissionError as busy:
            raise HttpError(503, str(busy), headers={
                "Retry-After": f"{busy.retry_after_s:g}"
            }) from None
        except ValueError as bad:
            raise HttpError(400, str(bad)) from None
        except JobFailed as failed:
            status = 504 if failed.failure.get(
                "error_type") == "DeadlineExceeded" else 500
            writer.write(_json_response(status, {
                "failure": failed.failure,
            }))
            return
        status = 200 if "result" in response else 202
        writer.write(_json_response(status, response))


async def run_router(router: ClusterRouter, host: str, port: int) -> None:
    """Blocking entry point: serve the router until SIGTERM/SIGINT."""
    import signal

    server = RouterHttpServer(router, host=host, port=port)
    await server.start()
    print(f"repro-oasis cluster: router on http://{server.host}:{server.port}"
          f" (max_inflight={router.max_inflight})")
    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    installed: list = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, shutdown.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    serve_task = asyncio.create_task(server.serve_forever())
    stop_task = asyncio.create_task(shutdown.wait())
    try:
        await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
    except asyncio.CancelledError:
        pass
    finally:
        for task in (serve_task, stop_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.stop()
