"""On-touch migration: always migrate the faulted page to the requester.

The baseline policy (Section II-B1).  Every fault resolves by moving the
page into the faulting GPU's memory; subsequent accesses from that GPU are
local, but pages shared by several GPUs "ping-pong" — each sharer's access
re-migrates the page and invalidates the previous holder's translation.
"""

from __future__ import annotations

from repro.memory import POLICY_ON_TOUCH
from repro.policies.base import PolicyEngine


class OnTouchPolicy(PolicyEngine):
    """Uniform on-touch migration."""

    name = "on_touch"

    def _on_attach(self) -> None:
        # All PTEs carry the default "00" policy bits already; make it
        # explicit so policy histograms are meaningful for every engine.
        self.machine.set_all_policy_bits(POLICY_ON_TOUCH)

    def on_fault(self, gpu: int, page: int, is_write: bool) -> float:
        return self.driver.migrate(gpu, page)
