"""The paper's hypothetical "Ideal" NUMA-GPU configuration (Section IV-A).

Every first access by a GPU to a page — read *or* write — pays a
duplication latency and installs a local copy; every subsequent access is
local and free of NUMA cost, with no coherence maintained between the
copies.  Infeasible in practice (writes diverge), but it bounds the
attainable improvement.

Machines running this policy are built with ``coherent=False`` page tables
so multiple writable copies are representable.
"""

from __future__ import annotations

from repro.policies.base import PolicyEngine


class IdealPolicy(PolicyEngine):
    """Duplicate-everything upper bound (not realizable)."""

    name = "ideal"

    #: Machines must disable write-exclusivity for this policy.
    requires_incoherent_page_tables = True

    def on_fault(self, gpu: int, page: int, is_write: bool) -> float:
        return self.driver.ideal_copy(gpu, page)
