"""Page-management policy engines.

Uniform policies (applied to every page, Section II-B):

* :class:`~repro.policies.on_touch.OnTouchPolicy` — the baseline.
* :class:`~repro.policies.access_counter.AccessCounterPolicy`
* :class:`~repro.policies.duplication.DuplicationPolicy`
* :class:`~repro.policies.ideal.IdealPolicy` — the paper's hypothetical
  upper bound (Section IV-A).

Adaptive comparator:

* :class:`~repro.policies.grit.GritPolicy` — per-page learned policy
  (GRIT, HPCA 2024), reconstructed from the paper's description.

A static-hints strawman (:class:`~repro.policies.static_advise.
StaticAdvisePolicy`) emulates ``cudaMemAdvise``-style compile-time advice
for comparison (the paper's Related Work discussion).

OASIS itself lives in :mod:`repro.core`.
"""

from repro.policies.access_counter import AccessCounterPolicy
from repro.policies.base import PolicyEngine
from repro.policies.duplication import DuplicationPolicy
from repro.policies.grit import GritPolicy
from repro.policies.ideal import IdealPolicy
from repro.policies.on_touch import OnTouchPolicy
from repro.policies.static_advise import StaticAdvisePolicy

__all__ = [
    "AccessCounterPolicy",
    "DuplicationPolicy",
    "GritPolicy",
    "IdealPolicy",
    "OnTouchPolicy",
    "PolicyEngine",
    "StaticAdvisePolicy",
]
