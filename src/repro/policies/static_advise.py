"""Static-hints policy: the ``cudaMemAdvise`` strawman (Related Work).

The paper's Related Work notes that static analysis plus ``cudaMemAdvise``
can tell whether an object is *read or written* — and hint read-mostly
data for duplication — but "neither static analysis nor cudaMemAdvise can
determine whether an object is private or shared at runtime", nor can
they follow phase changes.

This policy emulates that programming model: before execution it derives
one immutable hint per object from its whole-program read/write behaviour
(exactly what a compiler or annotating programmer could know):

* an object that is only ever read → ``cudaMemAdviseSetReadMostly`` →
  duplication;
* everything else → no advice → default on-touch migration.

No runtime adaptation ever happens, so phase-dependent objects (C2D's
intermediates, ST's swap buffers) and write-shared objects are served by
whichever static choice was made — the gap to OASIS quantifies the value
of runtime object tracking.
"""

from __future__ import annotations

from repro.analysis.classify import classify_pages
from repro.memory import POLICY_DUPLICATION, POLICY_ON_TOUCH
from repro.policies.base import PolicyEngine


class StaticAdvisePolicy(PolicyEngine):
    """Per-object static hints, fixed for the whole execution."""

    name = "static_advise"

    def __init__(self, hints: dict[str, str] | None = None) -> None:
        """Create the policy.

        Args:
            hints: optional explicit per-object advice, mapping object
                name to ``"read_mostly"`` or ``"none"``.  Objects not
                listed (or all objects, when None) get their advice
                derived from the trace's read/write behaviour.
        """
        super().__init__()
        self._explicit_hints = dict(hints or {})
        #: Resolved advice by object name (after attach).
        self.hints: dict[str, str] = {}

    def _on_attach(self) -> None:
        trace = self.machine.trace
        cls = classify_pages(trace)
        rw_labels = cls.rw_labels()
        for obj in trace.objects:
            advice = self._explicit_hints.get(obj.name)
            if advice is None:
                start = obj.first_page - trace.first_page
                labels = rw_labels[start:start + obj.n_pages]
                touched = labels[labels != "untouched"]
                read_only = len(touched) > 0 and bool(
                    (touched == "read-only").all()
                )
                advice = "read_mostly" if read_only else "none"
            if advice not in ("read_mostly", "none"):
                raise ValueError(f"unknown advice {advice!r} for {obj.name}")
            self.hints[obj.name] = advice
            bits = (
                POLICY_DUPLICATION if advice == "read_mostly"
                else POLICY_ON_TOUCH
            )
            self.page_tables.set_policy_range(obj.first_page, obj.n_pages,
                                              bits)
            if advice == "read_mostly":
                self.stats.add("advise.read_mostly_objects")

    def on_fault(self, gpu: int, page: int, is_write: bool) -> float:
        if self.page_tables.has_copy(gpu, page):
            pt = self.page_tables
            pt.map_local(gpu, page, writable=not pt.is_duplicated(page))
            return self.config.latency.pte_update_ns
        if self.page_tables.policy(page) == POLICY_DUPLICATION:
            if is_write:
                # Writing read-mostly-advised data: collapse, as the real
                # driver does when advice turns out wrong.
                self.stats.add("advise.wrong_hint_writes")
                return self.driver.collapse(gpu, page)
            return self.driver.duplicate(gpu, page)
        return self.driver.migrate(gpu, page)

    def on_protection_fault(self, gpu: int, page: int) -> float:
        self.stats.add("advise.wrong_hint_writes")
        return self.driver.collapse(gpu, page)
