"""Page duplication with write-collapse (Section II-B3).

Read faults install a read-only duplicate on the requester, so read-shared
pages are served locally everywhere.  A write to a duplicated page raises a
page-protection fault and *collapses* the page: every other copy is
invalidated and the writer becomes the exclusive owner.  Write-heavy
sharing therefore thrashes, which is exactly the behaviour the paper's
characterization attributes to rw-mix objects under duplication.
"""

from __future__ import annotations

from repro.memory import POLICY_DUPLICATION
from repro.policies.base import PolicyEngine


class DuplicationPolicy(PolicyEngine):
    """Uniform read-duplication / write-collapse."""

    name = "duplication"

    def _on_attach(self) -> None:
        self.machine.set_all_policy_bits(POLICY_DUPLICATION)

    def on_fault(self, gpu: int, page: int, is_write: bool) -> float:
        if is_write:
            return self.driver.collapse(gpu, page)
        return self.driver.duplicate(gpu, page)

    def on_protection_fault(self, gpu: int, page: int) -> float:
        self.stats.add("collapse.protection_triggered")
        return self.driver.collapse(gpu, page)
