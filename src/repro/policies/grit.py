"""GRIT: fine-grained dynamic page placement (HPCA 2024 comparator).

Reconstructed from the OASIS paper's description (Sections I and VI-C).
GRIT learns the management policy **per page** with three components:

* **Fault-Aware Initiator** — a page's policy is reconsidered only after
  it has suffered a number of faults (four, per Section VI-C: "GRIT
  requires four faults to trigger a policy change for a single page");
* **Policy Decision Selection** — the new policy is chosen from the
  page's observed read/write sharing history (write-shared → access
  counter, read-shared → duplication);
* **Neighboring-Aware Prediction** — when a page's policy changes, the
  same policy is proactively applied to a window of neighbouring pages
  (spatial locality), saving their learning faults but risking
  mispredictions across object boundaries.

Costs reproduced from the paper's comparison: 48 bits of per-page
in-memory metadata, cached in a 352-byte on-chip PA-Cache — fault handling
pays a memory access whenever the PA-Cache misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HOST
from repro.memory import POLICY_COUNTER, POLICY_DUPLICATION, POLICY_ON_TOUCH
from repro.policies.base import CounterMigrationMixin, PolicyEngine

#: Faults on one page before its policy is re-decided (Section VI-C).
FAULTS_PER_DECISION = 4

#: Pages ahead of a decided page that inherit its policy prediction.
NEIGHBOR_WINDOW = 8

#: Per-page metadata size GRIT stores in memory (Section VI-C).
METADATA_BITS_PER_PAGE = 48

#: On-chip PA-Cache size (Section VI-C: 352 bytes).
PA_CACHE_BYTES = 352

#: PA-Cache entries: 352 B / 48-bit records, rounded down.
PA_CACHE_ENTRIES = PA_CACHE_BYTES * 8 // METADATA_BITS_PER_PAGE


@dataclass
class PageMeta:
    """GRIT's 48-bit per-page attribute record (unpacked)."""

    fault_count: int = 0
    read_seen: bool = False
    write_seen: bool = False
    sharer_mask: int = 0

    def observe(self, gpu: int, is_write: bool) -> None:
        self.fault_count += 1
        if is_write:
            self.write_seen = True
        else:
            self.read_seen = True
        self.sharer_mask |= 1 << gpu

    def reset_window(self) -> None:
        """Start a fresh observation window after a decision."""
        self.fault_count = 0
        self.read_seen = False
        self.write_seen = False
        self.sharer_mask = 0


class PACache:
    """Fully-associative LRU cache of per-page metadata records."""

    def __init__(self, entries: int = PA_CACHE_ENTRIES) -> None:
        if entries < 1:
            raise ValueError("PA-Cache needs at least one entry")
        self._entries = entries
        self._lines: dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._entries

    def access(self, page: int) -> bool:
        """Touch ``page``'s record; True on hit, False on miss (fill)."""
        lines = self._lines
        if page in lines:
            del lines[page]
            lines[page] = None
            self.hits += 1
            return True
        if len(lines) >= self._entries:
            del lines[next(iter(lines))]
        lines[page] = None
        self.misses += 1
        return False


class GritPolicy(CounterMigrationMixin, PolicyEngine):
    """Per-page learned policy with neighbour prediction."""

    name = "grit"

    def __init__(
        self,
        faults_per_decision: int = FAULTS_PER_DECISION,
        neighbor_window: int = NEIGHBOR_WINDOW,
    ) -> None:
        super().__init__()
        if faults_per_decision < 1:
            raise ValueError("faults_per_decision must be >= 1")
        if neighbor_window < 0:
            raise ValueError("neighbor_window must be >= 0")
        self.faults_per_decision = faults_per_decision
        self.neighbor_window = neighbor_window
        self.pa_cache = PACache()
        self._meta: dict[int, PageMeta] = {}
        self.predictions = 0

    def _on_attach(self) -> None:
        self.machine.set_all_policy_bits(POLICY_ON_TOUCH)

    # -- metadata ------------------------------------------------------------

    def meta_for(self, page: int) -> PageMeta:
        meta = self._meta.get(page)
        if meta is None:
            meta = PageMeta()
            self._meta[page] = meta
        return meta

    @property
    def metadata_bytes(self) -> int:
        """In-memory metadata footprint (48 bits x touched pages)."""
        return len(self._meta) * METADATA_BITS_PER_PAGE // 8

    def _metadata_access_cost(self, page: int) -> float:
        if self.pa_cache.access(page):
            return 0.0
        self.stats.add("grit.pa_cache_miss")
        return self.config.latency.metadata_memory_ns

    # -- fault handling ----------------------------------------------------------

    def on_fault(self, gpu: int, page: int, is_write: bool) -> float:
        pt = self.page_tables
        cost = self._metadata_access_cost(page)
        if pt.has_copy(gpu, page):
            pt.map_local(gpu, page, writable=not pt.is_duplicated(page))
            return cost + self.config.latency.pte_update_ns
        location = pt.location(page)
        if location == HOST and pt.policy(page) == POLICY_ON_TOUCH:
            # First touch: default on-touch, no learning needed.
            return cost + self.driver.migrate(gpu, page)
        meta = self.meta_for(page)
        meta.observe(gpu, is_write)
        self._maybe_decide(page, meta)
        return cost + self._resolve(gpu, page, is_write)

    def on_protection_fault(self, gpu: int, page: int) -> float:
        cost = self._metadata_access_cost(page)
        meta = self.meta_for(page)
        meta.observe(gpu, is_write=True)
        self._maybe_decide(page, meta)
        # Regardless of any policy change, the write itself must collapse
        # the duplicated page.
        return cost + self.driver.collapse(gpu, page)

    # -- decision logic --------------------------------------------------------------

    def _maybe_decide(self, page: int, meta: PageMeta) -> None:
        """Fault-Aware Initiator: re-decide after enough faults."""
        if meta.fault_count < self.faults_per_decision:
            return
        new_bits = self._decide(meta)
        meta.reset_window()
        pt = self.page_tables
        if pt.policy(page) != new_bits:
            pt.set_policy(page, new_bits)
            self.stats.add("grit.policy_changes")
            self._predict_neighbors(page, new_bits)

    def _decide(self, meta: PageMeta) -> int:
        """Policy Decision Selection from the observed window."""
        if meta.write_seen:
            return POLICY_COUNTER
        return POLICY_DUPLICATION

    def _predict_neighbors(self, page: int, bits: int) -> None:
        """Neighboring-Aware Prediction: stamp the next pages' PTEs."""
        pt = self.page_tables
        machine = self.machine
        for offset in range(1, self.neighbor_window + 1):
            neighbor = page + offset
            if not machine.tracks_page(neighbor):
                break
            if pt.policy(neighbor) != bits:
                pt.set_policy(neighbor, bits)
                self.predictions += 1
                self.stats.add("grit.neighbor_predictions")

    # -- resolution -------------------------------------------------------------------

    def _resolve(self, gpu: int, page: int, is_write: bool) -> float:
        pt = self.page_tables
        bits = pt.policy(page)
        if bits == POLICY_COUNTER:
            if pt.is_duplicated(page):
                return self.driver.collapse(gpu, page)
            return self.driver.map_remote(gpu, page)
        if bits == POLICY_DUPLICATION:
            if is_write:
                return self.driver.collapse(gpu, page)
            return self.driver.duplicate(gpu, page)
        return self.driver.migrate(gpu, page)
