"""Policy-engine interface.

A policy engine owns *fault resolution*: the machine routes every page
fault, protection fault and remote access to the attached engine, which
resolves it through the UVM driver primitives and returns the extra latency
(beyond the fixed fault-service cost) the faulting GPU pays.

Engines also receive lifecycle callbacks: object allocation/free (used by
the OASIS Object Tracker) and phase starts (used for explicit-phase
O-Table resets).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine
    from repro.workloads.base import ObjectDef, PhaseTrace


class PolicyEngine(abc.ABC):
    """Base class for all page-management policies."""

    #: Short identifier used in reports ("on_touch", "oasis", ...).
    name: str = "abstract"

    def __init__(self) -> None:
        self.machine: "Machine | None" = None

    # -- wiring ------------------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        """Bind the engine to a machine before simulation starts."""
        self.machine = machine
        self._on_attach()

    def _on_attach(self) -> None:
        """Hook for subclasses; machine components are available."""

    @property
    def driver(self):
        return self.machine.driver

    @property
    def page_tables(self):
        return self.machine.page_tables

    @property
    def config(self):
        return self.machine.config

    @property
    def stats(self):
        return self.machine.stats

    # -- lifecycle callbacks -------------------------------------------------

    def on_alloc(self, obj: "ObjectDef") -> None:
        """An object was allocated (``cudaMallocManaged``)."""

    def on_free(self, obj: "ObjectDef") -> None:
        """An object was freed."""

    def on_phase_start(self, phase_index: int, phase: "PhaseTrace") -> None:
        """A new phase begins (kernel launch if ``phase.explicit``)."""

    # -- fault handling ---------------------------------------------------------

    @abc.abstractmethod
    def on_fault(self, gpu: int, page: int, is_write: bool) -> float:
        """Resolve a page fault; returns resolution latency in ns."""

    def on_protection_fault(self, gpu: int, page: int) -> float:
        """Resolve a write to a read-only (duplicated) page."""
        raise RuntimeError(
            f"policy {self.name!r} produced a protection fault it cannot handle "
            f"(gpu={gpu}, page={page})"
        )

    def on_remote_access(
        self, gpu: int, page: int, is_write: bool, weight: int
    ) -> None:
        """Observe ``weight`` accesses served from remote memory."""
        raise RuntimeError(
            f"policy {self.name!r} left a remote mapping it cannot handle "
            f"(gpu={gpu}, page={page})"
        )


class CounterMigrationMixin:
    """Shared implementation of counter-based remote-access handling.

    Used by the uniform access-counter policy and by every adaptive policy
    whose counter-mode pages behave identically: remote accesses are
    counted per (GPU, 64 KB group); when the threshold trips, the whole
    group migrates to the requesting GPU in one driver operation.
    """

    def on_remote_access(
        self, gpu: int, page: int, is_write: bool, weight: int
    ) -> None:
        """Count the remote accesses; migrate the group on a threshold trip.

        Shared verbatim by every counter-counting policy.  The vectorized
        replay fast path detects this exact method (``type(policy).
        on_remote_access is CounterMigrationMixin.on_remote_access``) to
        know remote-access handling is pure counting — a policy that
        overrides it drops back to per-record replay.
        """
        self._handle_counted_remote(gpu, page, weight)

    def _count_remote_bulk(self, gpu: int, page: int, weight: int) -> bool:
        """Add ``weight`` remote accesses at once; True if threshold trips.

        One trace record may carry many accesses (its weight); the
        threshold can trip at most once per record because the group
        migrates immediately afterwards.
        """
        return self.machine.access_counters.record_remote_bulk(
            gpu, page, weight
        )

    def _handle_counted_remote(self, gpu: int, page: int, weight: int) -> None:
        """Count remote accesses and migrate the group on a threshold trip."""
        if self._count_remote_bulk(gpu, page, weight):
            self._migrate_group(gpu, page)

    def _migrate_group(self, gpu: int, page: int) -> None:
        """Migrate every remotely-held page of ``page``'s group to ``gpu``."""
        machine = self.machine
        pt = machine.page_tables
        counters = machine.access_counters
        group = counters.group_of(page)
        first = group * counters.pages_per_group
        origin = pt.location(page)
        cost = 0.0
        n_migrated = 0
        for candidate in range(first, first + counters.pages_per_group):
            if not machine.tracks_page(candidate):
                continue
            if pt.has_copy(gpu, candidate):
                continue
            if candidate == page or pt.location(candidate) == origin:
                cost += machine.driver.migrate(gpu, candidate)
                n_migrated += 1
        counters.reset_group(page)
        if n_migrated:
            machine.stats.add("migration.counter_triggered", n_migrated)
            machine.charge_driver_op(gpu, cost)
