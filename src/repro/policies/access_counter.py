"""Access-counter-based migration (Section II-B2).

A faulting GPU first maps the page *remotely* (data stays put); hardware
counters track remote accesses per 64 KB group, and only when a GPU's
counter reaches the threshold (256 in the NVIDIA driver, Table I) does the
group migrate to that GPU.  This kills on-touch's ping-pong but pays remote
latency until the threshold trips, plus PTE-invalidation costs when it
does.

As a *uniform* policy (the way the paper evaluates it), migration happens
**only** at the counter threshold: a fault — even the first touch of a
host-resident page — resolves by establishing a remote mapping, and the
data stays put until the requester's counter trips.  This is what makes
the policy lose to on-touch on private, heavily-reused data (e.g. I2C in
Fig. 2): it defers migration behind hundreds of remote accesses.
"""

from __future__ import annotations

from repro.memory import POLICY_COUNTER
from repro.policies.base import CounterMigrationMixin, PolicyEngine


class AccessCounterPolicy(CounterMigrationMixin, PolicyEngine):
    """Uniform access-counter-based migration."""

    name = "access_counter"

    def _on_attach(self) -> None:
        self.machine.set_all_policy_bits(POLICY_COUNTER)

    def on_fault(self, gpu: int, page: int, is_write: bool) -> float:
        pt = self.page_tables
        if pt.has_copy(gpu, page):
            # Our mapping was invalidated (e.g. by a counter migration
            # elsewhere in the group) but the data is already local.
            pt.map_local(gpu, page, writable=True)
            return self.config.latency.pte_update_ns
        return self.driver.map_remote(gpu, page)
