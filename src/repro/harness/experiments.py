"""Experiment registry: one entry per table/figure of the paper.

Every function regenerates the rows/series of one artifact of the paper's
evaluation and returns an :class:`~repro.harness.report.ExperimentResult`
carrying both the paper's claim and the measured counterpart, so
EXPERIMENTS.md can be produced mechanically.

All experiments accept an optional ``apps`` list to run on a subset (the
benchmarks use this for smoke modes); by default they use the paper's
eleven applications.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis import (
    access_share_by_object,
    classify_object,
    classify_pages,
    object_pattern_by_phase,
    page_type_percentages,
    pages_by_object,
    page_pattern_timeline,
    phase_page_patterns,
    size_histogram,
)
from repro.config import PAGE_SIZE_2M, baseline_config
from repro.harness.report import ExperimentResult, geomean
from repro.harness.runner import run_sim, speedup_table
from repro.workloads import APPLICATION_ORDER, APPLICATIONS, get_workload

DEFAULT_APPS = list(APPLICATION_ORDER)

#: The three uniform policies of Fig. 2 (on-touch is the baseline).
UNIFORM_POLICIES = ["access_counter", "duplication", "ideal"]

#: Everything in Fig. 15.
ALL_POLICIES = [
    "access_counter", "duplication", "ideal", "grit", "oasis", "oasis_inmem",
]


def _pct(speedup: float) -> str:
    return f"{(speedup - 1.0) * 100:+.0f}%"


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1(apps=None, seed: int = 0) -> ExperimentResult:
    """Table I: baseline multi-GPU configuration."""
    cfg = baseline_config()
    lat = cfg.latency
    rows = [
        ["GPUs", cfg.n_gpus],
        ["Page size", f"{cfg.page_size // 1024} KB"],
        ["DRAM per GPU", f"{cfg.gpu_memory_bytes // 2**30} GB"],
        ["L1 TLB", f"{cfg.l1_tlb.entries} entries, {cfg.l1_tlb.ways}-way, LRU"],
        ["L2 TLB", f"{cfg.l2_tlb.entries} entries, {cfg.l2_tlb.ways}-way, LRU"],
        ["Access counter threshold", cfg.access_counter_threshold],
        ["Counter group", f"{cfg.counter_group_bytes // 1024} KB"],
        ["Inter-GPU network", f"{lat.nvlink_bw_bytes_per_ns:.0f} GB/s NVLink-v2"],
        ["CPU-GPU network", f"{lat.pcie_bw_bytes_per_ns:.0f} GB/s PCIe-v4"],
        ["O-Table entries", cfg.otable_entries],
        ["O-Table reset threshold", cfg.reset_threshold],
        ["Initial placement", cfg.initial_placement],
    ]
    return ExperimentResult(
        "table1", "Baseline multi-GPU configuration", ["parameter", "value"],
        rows,
        paper_claim="Table I: 4 GPUs, 4 KB pages, threshold 256, "
                    "300 GB/s NVLink, 32 GB/s PCIe",
        measured_claim="configuration encoded in repro.config.SystemConfig",
    )


def table2(apps=None, seed: int = 0) -> ExperimentResult:
    """Table II: application list with object counts and footprints."""
    cfg = baseline_config()
    rows = []
    for app in apps or DEFAULT_APPS:
        info = APPLICATIONS[app]
        trace = get_workload(app, cfg)
        rows.append([
            app, info.suite, info.pattern,
            info.n_objects, trace.n_objects,
            info.footprint_for(4), round(trace.footprint_bytes / 2**20, 1),
            len(trace.phases),
        ])
    return ExperimentResult(
        "table2", "Applications (Table II)",
        ["app", "suite", "pattern", "objects(paper)", "objects(built)",
         "MB(paper)", "MB(built)", "phases"],
        rows,
        paper_claim="11 apps, 2-263 objects, 24-297 MB footprints",
        measured_claim="object counts match exactly; footprints within 3%",
    )


def table3(apps=None, seed: int = 0) -> ExperimentResult:
    """Table III: memory footprints for 8- and 16-GPU configurations."""
    rows = []
    for app in apps or DEFAULT_APPS:
        info = APPLICATIONS[app]
        row = [app]
        for n in (8, 16):
            cfg = baseline_config(n_gpus=n)
            trace = get_workload(app, cfg)
            row.extend([info.footprint_for(n),
                        round(trace.footprint_bytes / 2**20, 1)])
        rows.append(row)
    return ExperimentResult(
        "table3", "Memory footprints for different GPU counts (Table III)",
        ["app", "8GPU MB(paper)", "8GPU MB(built)",
         "16GPU MB(paper)", "16GPU MB(built)"],
        rows,
        paper_claim="footprints scale with GPU count per Table III",
        measured_claim="built footprints match the table within 3%",
    )


# ---------------------------------------------------------------------------
# Characterization figures (Section IV)
# ---------------------------------------------------------------------------

def fig2(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 2: uniform policies normalized to on-touch, plus Ideal."""
    cfg = baseline_config()
    rows, geo = speedup_table(cfg, apps or DEFAULT_APPS, UNIFORM_POLICIES,
                              seed=seed)
    return ExperimentResult(
        "fig2", "Uniform page-management policies vs on-touch (Fig. 2)",
        ["app", *UNIFORM_POLICIES], rows,
        paper_claim="no single policy wins everywhere; Ideal bounds all",
        measured_claim=(
            f"counter {_pct(geo['access_counter'])}, "
            f"duplication {_pct(geo['duplication'])}, "
            f"ideal {_pct(geo['ideal'])} vs on-touch (geomean); "
            "winners differ per app"
        ),
    )


def fig3(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 3: distribution of object sizes."""
    cfg = baseline_config()
    traces = [get_workload(a, cfg) for a in (apps or DEFAULT_APPS)]
    hist = size_histogram(traces)
    total = sum(hist.values())
    rows = [[bucket, count, round(100 * count / total, 1)]
            for bucket, count in hist.items()]
    return ExperimentResult(
        "fig3", "Object size distribution in pages (Fig. 3)",
        ["size bucket (pages)", "objects", "%"], rows,
        paper_claim="smallest objects are one 4 KB page; most span many pages",
        measured_claim=f"{total} objects; bucket distribution above",
    )


def fig4(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 4: MT page access patterns over pages and over time."""
    cfg = baseline_config()
    trace = get_workload("mt", cfg)
    cls = classify_pages(trace)
    rows = []
    for obj in trace.objects:
        pattern = classify_object(trace, obj, cls)
        timeline = page_pattern_timeline(
            trace, n_intervals=8, obj=obj,
            page_step=max(1, obj.n_pages // 16),
        )
        interval_labels = []
        for t in range(8):
            col = timeline[:, t]
            touched = col[col != "untouched"]
            interval_labels.append(
                touched[0] if len(touched) and all(touched == touched[0])
                else ("untouched" if not len(touched) else "mixed")
            )
        rows.append([obj.name, obj.n_pages, pattern.label,
                     " ".join(x[:2] for x in interval_labels)])
    return ExperimentResult(
        "fig4", "MT page access patterns (Fig. 4)",
        ["object", "pages", "pattern", "per-interval (8 slices: re/wr/un)"],
        rows,
        paper_claim="MT_Input entirely read-only, MT_Output entirely "
                    "write-only, stable across all 8 time intervals",
        measured_claim="same: input read-only, output write-only, stable",
    )


def fig5(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 5: object behaviour and access shares for I2C, MM, ST."""
    cfg = baseline_config()
    rows = []
    for app in ("i2c", "mm", "st"):
        trace = get_workload(app, cfg)
        cls = classify_pages(trace)
        shares = access_share_by_object(trace)
        page_frac = pages_by_object(trace)
        for obj in trace.objects:
            pattern = classify_object(trace, obj, cls)
            rows.append([
                app, obj.name, pattern.label,
                round(100 * page_frac[obj.name], 1),
                round(100 * shares[obj.name], 1),
            ])
    return ExperimentResult(
        "fig5", "Object behaviour for I2C, MM, ST (Fig. 5)",
        ["app", "object", "pattern", "% pages", "% accesses"], rows,
        paper_claim="I2C_Output private with ~75% of accesses; MM_A/MM_B "
                    "shared-read-only with ~80%; ST data shared-rw-mix",
        measured_claim="same structure (see rows)",
    )


def fig6(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 6: C2D object patterns across explicit phases."""
    cfg = baseline_config()
    trace = get_workload("c2d", cfg)
    focus = ["C2D_Input", "C2D_Weights", "Im2col_Output", "GEMM_Output",
             "MT_Output"]
    rows = []
    for obj in trace.objects:
        if obj.name not in focus:
            continue
        overall = classify_object(trace, obj)
        per_phase = object_pattern_by_phase(trace, obj)
        labels = [
            p.label if p.sharing != "untouched" else "-" for p in per_phase
        ]
        rows.append([obj.name, overall.label, *labels])
    headers = ["object", "overall", *(p.name for p in trace.phases)]
    return ExperimentResult(
        "fig6", "C2D object patterns across phases (Fig. 6)",
        headers, rows,
        paper_claim="objects shared-rw-mix overall but private and "
                    "read-/write-only within individual phases",
        measured_claim="per-phase labels are private/single-role; overall "
                       "labels are shared/rw-mix",
    )


def fig7(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 7: ST page patterns across iterations (implicit phases)."""
    cfg = baseline_config()
    trace = get_workload("st", cfg)
    curr = next(o for o in trace.objects if o.name == "ST_currData")
    new = next(o for o in trace.objects if o.name == "ST_newData")
    rows = []
    for obj in (curr, new):
        grid = phase_page_patterns(trace, obj,
                                   page_step=max(1, obj.n_pages // 6))
        for i in range(min(6, grid.shape[0])):
            labels = [x[:2] for x in grid[i, :12]]
            rows.append([obj.name, i, " ".join(labels)])
    return ExperimentResult(
        "fig7", "ST page patterns across iterations (Fig. 7)",
        ["object", "sample page", "first 12 iterations (re/wr/rw/un)"], rows,
        paper_claim="pages alternate read-only/write-only between "
                    "iterations as the buffers swap",
        measured_claim="currData and newData pages alternate roles each "
                       "iteration",
    )


# ---------------------------------------------------------------------------
# Main results (Section VI)
# ---------------------------------------------------------------------------

def fig15(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 15: OASIS and OASIS-InMem vs all policies."""
    cfg = baseline_config()
    rows, geo = speedup_table(cfg, apps or DEFAULT_APPS, ALL_POLICIES,
                              seed=seed)
    oasis = geo["oasis"]
    return ExperimentResult(
        "fig15", "Overall performance vs baseline on-touch (Fig. 15)",
        ["app", *ALL_POLICIES], rows,
        paper_claim="OASIS +64% vs on-touch, +35% vs counter, +42% vs "
                    "duplication; OASIS-InMem within 2% of OASIS",
        measured_claim=(
            f"OASIS {_pct(oasis)} vs on-touch, "
            f"{_pct(oasis / geo['access_counter'])} vs counter, "
            f"{_pct(oasis / geo['duplication'])} vs duplication; "
            f"InMem {(geo['oasis_inmem'] / oasis - 1) * 100:+.1f}% vs OASIS"
        ),
    )


def fig16(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 16: sensitivity to the O-Table reset threshold."""
    thresholds = (4, 8, 32)
    apps = apps or DEFAULT_APPS
    base_cfg = baseline_config()
    rows = []
    geos = {}
    speeds = {t: [] for t in thresholds}
    for app in apps:
        base = run_sim(base_cfg, app, "on_touch", seed=seed)
        row = [app]
        for threshold in thresholds:
            cfg = base_cfg.replace(reset_threshold=threshold)
            result = run_sim(cfg, app, "oasis", seed=seed)
            s = result.speedup_over(base)
            row.append(s)
            speeds[threshold].append(s)
        rows.append(row)
    geos = {t: geomean(v) for t, v in speeds.items()}
    rows.append(["geomean", *(geos[t] for t in thresholds)])
    return ExperimentResult(
        "fig16", "OASIS with different reset thresholds (Fig. 16)",
        ["app", *(f"threshold={t}" for t in thresholds)], rows,
        paper_claim="+55% / +64% / +56% over on-touch for thresholds "
                    "4 / 8 / 32; gains saturate at 8",
        measured_claim=" / ".join(_pct(geos[t]) for t in thresholds)
                       + " for thresholds 4 / 8 / 32",
    )


def fig17(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 17: OASIS with 8 and 16 GPUs (workloads scaled per Table III)."""
    apps = apps or DEFAULT_APPS
    rows = []
    geos = {}
    for n in (8, 16):
        cfg = baseline_config(n_gpus=n)
        speeds = []
        for app in apps:
            base = run_sim(cfg, app, "on_touch", seed=seed)
            result = run_sim(cfg, app, "oasis", seed=seed)
            speeds.append(result.speedup_over(base))
        geos[n] = geomean(speeds)
        rows.extend(
            [[f"{n} GPUs", app, s] for app, s in zip(apps, speeds)]
        )
        rows.append([f"{n} GPUs", "geomean", geos[n]])
    return ExperimentResult(
        "fig17", "OASIS with 8 and 16 GPUs (Fig. 17)",
        ["config", "app", "speedup vs on-touch"], rows,
        paper_claim="+65% (8 GPUs) and +67% (16 GPUs) over on-touch",
        measured_claim=f"{_pct(geos[8])} (8 GPUs), {_pct(geos[16])} (16 GPUs)",
    )


def fig18(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 18: large inputs (16-GPU footprints) on the 4-GPU system."""
    apps = apps or DEFAULT_APPS
    cfg = baseline_config()
    footprints = {a: float(APPLICATIONS[a].footprint_for(16)) for a in apps}
    rows, geo = speedup_table(cfg, apps, ["oasis"], footprint_mb=footprints,
                              seed=seed)
    return ExperimentResult(
        "fig18", "OASIS with large input sizes (Fig. 18)",
        ["app", "oasis"], rows,
        paper_claim="+62% over on-touch with 16-GPU input sizes on 4 GPUs",
        measured_claim=f"{_pct(geo['oasis'])} over on-touch",
    )


def fig19(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 19: OASIS with 2 MB pages (normalized to 2 MB on-touch)."""
    apps = apps or DEFAULT_APPS
    cfg = baseline_config(page_size=PAGE_SIZE_2M)
    rows, geo = speedup_table(cfg, apps, ["oasis"], seed=seed)
    return ExperimentResult(
        "fig19", "OASIS with 2 MB pages (Fig. 19)",
        ["app", "oasis"], rows,
        paper_claim="+43% over 2 MB on-touch — positive but smaller than "
                    "4 KB because large pages convert private objects to "
                    "shared",
        measured_claim=f"{_pct(geo['oasis'])} over 2 MB on-touch",
    )


def fig20(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 20: page-type percentages with 4 KB vs 2 MB pages."""
    apps = apps or DEFAULT_APPS
    rows = []
    sums = {}
    for page_size, label in ((4096, "4KB"), (PAGE_SIZE_2M, "2MB")):
        cfg = baseline_config(page_size=page_size)
        for app in apps:
            trace = get_workload(app, cfg)
            pct = page_type_percentages(trace)
            rows.append([
                label, app,
                *(round(100 * pct.get(k, 0.0), 1)
                  for k in ("read-only", "write-only", "rw-mix",
                            "private", "shared")),
            ])
            for k, v in pct.items():
                sums.setdefault((label, k), []).append(v)
    shared4 = sum(sums[("4KB", "shared")]) / len(apps)
    shared2 = sum(sums[("2MB", "shared")]) / len(apps)
    rw4 = sum(sums[("4KB", "rw-mix")]) / len(apps)
    rw2 = sum(sums[("2MB", "rw-mix")]) / len(apps)
    return ExperimentResult(
        "fig20", "Page-type percentages: 4 KB vs 2 MB pages (Fig. 20)",
        ["pages", "app", "%read-only", "%write-only", "%rw-mix",
         "%private", "%shared"], rows,
        paper_claim="shared and rw-mix page percentages are higher with "
                    "2 MB pages than with 4 KB pages",
        measured_claim=(
            f"shared: {100 * shared4:.0f}% (4KB) -> {100 * shared2:.0f}% "
            f"(2MB); rw-mix: {100 * rw4:.0f}% -> {100 * rw2:.0f}%"
        ),
    )


def fig21(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 21: distributed initial page placement."""
    apps = apps or DEFAULT_APPS
    cfg = baseline_config(initial_placement="distributed")
    rows, geo = speedup_table(cfg, apps, ["oasis"], seed=seed)
    return ExperimentResult(
        "fig21", "OASIS with distributed initial placement (Fig. 21)",
        ["app", "oasis"], rows,
        paper_claim="+57% over on-touch with pages initially distributed "
                    "across GPUs — insensitive to initial placement",
        measured_claim=f"{_pct(geo['oasis'])} over distributed on-touch",
    )


def fig22(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 22: OASIS normalized to GRIT."""
    apps = apps or DEFAULT_APPS
    cfg = baseline_config()
    rows = []
    speeds = []
    for app in apps:
        grit = run_sim(cfg, app, "grit", seed=seed)
        oasis = run_sim(cfg, app, "oasis", seed=seed)
        s = oasis.speedup_over(grit)
        rows.append([app, s])
        speeds.append(s)
    g = geomean(speeds)
    rows.append(["geomean", g])
    return ExperimentResult(
        "fig22", "OASIS vs GRIT (Fig. 22)",
        ["app", "oasis vs grit"], rows,
        paper_claim="+12% over GRIT on average, with far less metadata "
                    "(12 bits/object vs 48 bits/page; 24 B vs 352 B on-chip)",
        measured_claim=f"{_pct(g)} over GRIT",
    )


def fig23(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 23: policy distribution of L2-TLB-miss requests."""
    apps = apps or DEFAULT_APPS
    cfg = baseline_config()
    rows = []
    for app in apps:
        for policy in ("grit", "oasis"):
            result = run_sim(cfg, app, policy, seed=seed)
            mix = result.l2_miss_policy_mix()
            rows.append([
                app, policy,
                *(round(100 * mix.get(k, 0.0), 1)
                  for k in ("on_touch", "access_counter", "duplication")),
            ])
    return ExperimentResult(
        "fig23", "Page policy distribution of L2-TLB-miss requests (Fig. 23)",
        ["app", "policy", "%on-touch", "%counter", "%duplication"], rows,
        paper_claim="both adapt per app; OASIS applies object-uniform "
                    "policies where GRIT mixes per page",
        measured_claim="distributions per app above",
    )


def fig24(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 24: total GPU page faults under GRIT and OASIS."""
    apps = apps or DEFAULT_APPS
    cfg = baseline_config()
    rows = []
    total_grit = 0.0
    total_oasis = 0.0
    for app in apps:
        g = run_sim(cfg, app, "grit", seed=seed).total_faults
        o = run_sim(cfg, app, "oasis", seed=seed).total_faults
        total_grit += g
        total_oasis += o
        rows.append([app, int(g), int(o),
                     round(100 * (1 - o / g), 1) if g else 0.0])
    reduction = 100 * (1 - total_oasis / total_grit)
    rows.append(["total", int(total_grit), int(total_oasis),
                 round(reduction, 1)])
    return ExperimentResult(
        "fig24", "GPU page faults: GRIT vs OASIS (Fig. 24)",
        ["app", "grit faults", "oasis faults", "% reduction"], rows,
        paper_claim="OASIS reduces page faults by 22% vs GRIT",
        measured_claim=f"{reduction:.0f}% fewer faults than GRIT",
    )


def fig25(apps=None, seed: int = 0) -> ExperimentResult:
    """Fig. 25: 150% memory oversubscription."""
    apps = apps or DEFAULT_APPS
    cfg = baseline_config(oversubscription=1.5)
    rows, geo = speedup_table(cfg, apps, ["oasis"], seed=seed)
    return ExperimentResult(
        "fig25", "OASIS under 150% oversubscription (Fig. 25)",
        ["app", "oasis"], rows,
        paper_claim="+20% over on-touch under 150% oversubscription "
                    "(gains compressed by eviction costs)",
        measured_claim=f"{_pct(geo['oasis'])} over oversubscribed on-touch",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
    "fig21": fig21,
    "fig22": fig22,
    "fig23": fig23,
    "fig24": fig24,
    "fig25": fig25,
}

#: Experiments that run simulations and therefore respond to ``seed``
#: (distinct workload traces of the same shape).  The rest — the tables
#: and the Section IV characterization figures — are structural
#: analyses of the default trace and are seed-invariant; multi-seed
#: sweeps run them once.
SEEDED_EXPERIMENTS = frozenset({
    "fig2", "fig15", "fig16", "fig17", "fig18", "fig19",
    "fig21", "fig22", "fig23", "fig24", "fig25",
})


def run_experiment(
    exp_id: str, apps: list[str] | None = None, seed: int = 0,
) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``"fig15"``)."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {exp_id!r}; known: {known}") from None
    return fn(apps=apps, seed=seed)
