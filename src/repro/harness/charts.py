"""ASCII bar charts for experiment reports.

The paper's performance figures are grouped bar charts; these helpers
render the same series as fixed-width text so a report is readable
without plotting libraries (none are available in this environment).
"""

from __future__ import annotations

#: Glyph used for bar bodies.
BAR = "#"

#: Maximum bar width in characters.
DEFAULT_WIDTH = 44


def bar_chart(
    items: list[tuple[str, float]],
    width: int = DEFAULT_WIDTH,
    reference: float | None = None,
) -> str:
    """Render one horizontal bar per ``(label, value)`` item.

    Args:
        items: labelled non-negative values.
        width: width (in characters) of the largest bar.
        reference: optional value to mark with a ``|`` tick on each row
            (e.g. the 1.0 baseline of a normalized-speedup chart).

    Returns:
        The chart as a multi-line string.
    """
    if width < 4:
        raise ValueError("width must be at least 4")
    if not items:
        return "(no data)"
    if any(value < 0 for _label, value in items):
        raise ValueError("bar values must be non-negative")
    peak = max(value for _label, value in items)
    if reference is not None:
        peak = max(peak, reference)
    if peak == 0:
        peak = 1.0
    label_width = max(len(label) for label, _value in items)
    # Divide by the peak first: ``width / peak`` can overflow for
    # subnormal peaks, while ``value / peak`` is always in [0, 1].
    ref_col = (
        round(reference / peak * width) if reference is not None else None
    )
    lines = []
    for label, value in items:
        bar_len = round(value / peak * width)
        bar = BAR * bar_len
        if ref_col is not None and ref_col <= width:
            row = list(bar.ljust(width))
            tick_at = min(max(ref_col - 1, 0), width - 1)
            row[tick_at] = "|" if row[tick_at] == " " else "+"
            bar = "".join(row).rstrip()
        lines.append(f"{label.rjust(label_width)} {bar} {value:.2f}")
    return "\n".join(lines)


def grouped_bar_chart(
    rows: list[list],
    headers: list[str],
    value_columns: list[int],
    width: int = DEFAULT_WIDTH,
    reference: float | None = 1.0,
) -> str:
    """Render a speedup table (one group per row) as stacked bar groups.

    Args:
        rows: table rows, first column the group label.
        headers: column names (for the per-bar series labels).
        value_columns: indices of the numeric columns to chart.
        width: bar width budget.
        reference: baseline tick (1.0 for normalized charts).
    """
    groups = []
    for row in rows:
        items = [(headers[c], float(row[c])) for c in value_columns]
        chart = bar_chart(items, width=width, reference=reference)
        groups.append(f"{row[0]}:\n{_indent(chart)}")
    return "\n".join(groups)


def _indent(text: str, by: int = 2) -> str:
    pad = " " * by
    return "\n".join(pad + line for line in text.splitlines())


def experiment_chart(result, width: int = DEFAULT_WIDTH) -> str:
    """Chart an :class:`~repro.harness.report.ExperimentResult`.

    For speedup tables (rows of ``[app, value...]`` with a geomean row)
    this renders the geomean row as one bar per policy with a 1.0
    baseline tick; other experiments chart their first numeric column per
    row.  Returns ``"(not chartable)"`` when no numeric data exists.
    """
    numeric_cols = [
        c for c in range(1, len(result.headers))
        if result.rows and all(
            isinstance(row[c], (int, float)) for row in result.rows
        )
    ]
    if not numeric_cols or not result.rows:
        return "(not chartable)"
    by_label = {row[0]: row for row in result.rows}
    if "geomean" in by_label and len(numeric_cols) > 1:
        row = by_label["geomean"]
        items = [(result.headers[c], float(row[c])) for c in numeric_cols]
        return bar_chart(items, width=width, reference=1.0)
    col = numeric_cols[0]
    items = [(str(row[0]), float(row[col])) for row in result.rows]
    return bar_chart(items, width=width)
