"""Report formatting: ASCII tables and summary statistics."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's 'average' for normalized performance)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def counter_table(snapshot, prefix: str = "") -> str:
    """Render a run's counters from its metrics snapshot.

    Reports always read counts through a
    :class:`~repro.obs.MetricsSnapshot` (see
    :meth:`~repro.sim.SimulationResult.metrics_snapshot`) rather than
    poking at raw stat dicts, so a rendered report and an exported trace
    of the same run cannot disagree on a value.

    Args:
        snapshot: a :class:`~repro.obs.MetricsSnapshot`.
        prefix: optional counter-name prefix filter (kept in the output).
    """
    rows = [
        [name, value]
        for name, value in snapshot.counters.items()
        if name.startswith(prefix)
    ]
    if not rows:
        return "(no counters)"
    return format_table(["counter", "value"], rows)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]

    def fmt_row(row: list[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt_row(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """The regenerated form of one paper table or figure."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    #: What the paper reports for this artifact.
    paper_claim: str = ""
    #: The corresponding measurement from this run.
    measured_claim: str = ""
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full human-readable report."""
        parts = [f"== {self.exp_id}: {self.title} ==",
                 format_table(self.headers, self.rows)]
        if self.paper_claim:
            parts.append(f"paper:    {self.paper_claim}")
        if self.measured_claim:
            parts.append(f"measured: {self.measured_claim}")
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def save(self, directory: str | Path) -> Path:
        """Write the rendered report to ``<directory>/<exp_id>.txt``
        (plus a machine-readable ``.json`` twin)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.exp_id}.txt"
        path.write_text(self.render() + "\n")
        json_path = directory / f"{self.exp_id}.json"
        json_path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def to_dict(self) -> dict:
        """JSON-serializable form of the experiment result."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "paper_claim": self.paper_claim,
            "measured_claim": self.measured_claim,
            "notes": list(self.notes),
        }

    def row_dict(self, key_column: int = 0) -> dict:
        """Rows keyed by one column (convenience for tests)."""
        return {row[key_column]: row for row in self.rows}
