"""Cached simulation runner.

Several figures share (config, workload, policy) combinations — Fig. 2 is
a subset of Fig. 15, Figs. 22/23/24 reuse the same OASIS/GRIT runs — so
simulation results are memoized at two levels:

* **in process** — a bounded LRU keyed by the full parameter tuple
  (``SystemConfig`` is a frozen dataclass, so the whole configuration is
  hashable).  The bound (default 256 results, override with
  ``REPRO_RUNNER_CACHE_SIZE``) keeps long sweep sessions from holding
  every result ever computed.
* **on disk** — optionally, a persistent content-addressed store (see
  :mod:`repro.harness.diskcache`) shared across processes and sessions.
  Enable with :func:`configure` or ``REPRO_DISK_CACHE=1``.

Independent runs can also be computed in parallel across worker
processes with :func:`run_sims_parallel`; :func:`speedup_table` uses it
to pre-warm the caches when ``jobs > 1``.

The parallel path is crash-tolerant: each run has a bounded number of
attempts with exponential backoff, a per-run wall-clock timeout, and a
dying worker process takes down only its own run — the pool is rebuilt,
innocent in-flight runs are re-dispatched without penalty, and after
repeated pool failures the remaining work degrades to in-process serial
execution.  A run that still cannot complete yields a structured
:class:`RunFailure` in its result slot instead of aborting the sweep.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro import POLICY_FACTORIES, make_policy
from repro.config import SystemConfig
from repro.harness.diskcache import DiskCache, cache_key
from repro.harness.report import geomean
from repro.sim import SimulationResult, simulate
from repro.sim.sweep import PhaseMemo
from repro.workloads import get_workload

#: Default cap on in-process memoized results.
DEFAULT_CACHE_SIZE = 256

#: Built traces kept for reuse across a sweep's runs.  Sharing the trace
#: object also shares the per-phase SoA replay arrays and prefix digests
#: cached on it (see :mod:`repro.sim.sweep`), so every policy variant in
#: a cohort skips both trace generation and array derivation.
DEFAULT_TRACE_CACHE_SIZE = 8

#: Default attempts per run in :func:`run_sims_parallel` (1 = no retry).
DEFAULT_MAX_ATTEMPTS = 2

#: Pool rebuilds tolerated before degrading to in-process execution.
DEFAULT_POOL_FAILURE_LIMIT = 2

_CACHE: OrderedDict[tuple, SimulationResult] = OrderedDict()
_STATS = {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "run_retries": 0,
    "pool_failures": 0,
    # Result-store writes that failed with OSError (disk full, chaos
    # injection): the result survives in memory and is recomputed by a
    # later process instead of crashing this one.
    "store_errors": 0,
    # Phase-memo counters merged back from worker processes; the serial
    # path's counters live on the in-process PhaseMemo itself, so
    # :func:`memo_stats` sums both (the sources are disjoint).
    "memo_hits": 0,
    "memo_misses": 0,
    "memo_stores": 0,
    "memo_snapshot_bytes": 0,
    "memo_resumed_phases": 0,
    "memo_corrupt": 0,
    "memo_io_errors": 0,
}
#: Scalar memo counters shipped as per-run deltas from pool workers.
_MEMO_DELTA_KEYS = (
    "hits", "misses", "stores", "snapshot_bytes",
    "resumed_phases", "corrupt", "io_errors",
)
#: Chaos-injection hook (see :mod:`repro.chaos.inject`); None = inert.
_CHAOS = None
_DISK: DiskCache | None = (
    DiskCache() if os.environ.get("REPRO_DISK_CACHE", "").strip() not in ("", "0")
    else None
)
_JOBS = 1
_TRACES: OrderedDict[tuple, object] = OrderedDict()
_MEMO: PhaseMemo | None = None
_MEMO_DIR: str | None = os.environ.get("REPRO_MEMO_DIR", "").strip() or None
_MEMO_ENABLED: bool = _MEMO_DIR is not None or (
    os.environ.get("REPRO_MEMO", "").strip() not in ("", "0")
)
#: Observability summary of the most recent :func:`run_sims_parallel`
#: sweep (see :func:`last_sweep_summary`).
_LAST_SWEEP: dict | None = None


def _cache_capacity() -> int:
    raw = os.environ.get("REPRO_RUNNER_CACHE_SIZE", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_CACHE_SIZE


def configure(
    jobs: int | None = None,
    disk_cache: bool | None = None,
    cache_dir: str | None = None,
    memo: bool | None = None,
    memo_dir: str | None = None,
) -> None:
    """Adjust runner-wide settings.

    Args:
        jobs: default worker-process count for :func:`run_sims_parallel`
            and :func:`speedup_table` (1 = serial).
        disk_cache: enable/disable the persistent result store.
        cache_dir: directory for the persistent store (implies enabling
            it); defaults to ``results/cache`` / ``REPRO_CACHE_DIR``.
        memo: enable/disable the sweep fast path (phase-prefix snapshot
            memoization; see :mod:`repro.sim.sweep`).  Off by default
            (``REPRO_MEMO=1`` enables it process-wide); the sweep CLI
            turns it on for sweeps unless ``--no-memo`` is given.
        memo_dir: directory for a persistent snapshot tier (implies
            enabling the memo).  Without it, snapshots share the result
            store's directory when the disk cache is on, else stay
            purely in-memory.
    """
    global _DISK, _JOBS, _MEMO, _MEMO_DIR, _MEMO_ENABLED
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        _JOBS = jobs
    if cache_dir is not None:
        _DISK = DiskCache(cache_dir)
        _MEMO = None  # a shared-disk memo tier must follow the move
    elif disk_cache is not None:
        _DISK = DiskCache() if disk_cache else None
        _MEMO = None
    if memo_dir is not None:
        _MEMO_DIR = memo_dir or None
        _MEMO = None
        if memo is None:
            memo = True
    if memo is not None:
        _MEMO_ENABLED = bool(memo)
        if not _MEMO_ENABLED:
            _MEMO = None


def disk_cache() -> DiskCache | None:
    """The runner's persistent result store, or None when disabled."""
    return _DISK


def _memo_store() -> PhaseMemo | None:
    """The process-wide snapshot store, built lazily when enabled."""
    global _MEMO
    if not _MEMO_ENABLED:
        return None
    if _MEMO is None:
        disk = DiskCache(_MEMO_DIR) if _MEMO_DIR else _DISK
        _MEMO = PhaseMemo(disk=disk)
    return _MEMO


def _get_trace(config, app, footprint_mb, seed):
    """Build-or-reuse one workload trace (shared across a cohort)."""
    key = (config, app, footprint_mb, seed)
    trace = _TRACES.get(key)
    if trace is not None:
        _TRACES.move_to_end(key)
        return trace
    trace = get_workload(app, config, footprint_mb=footprint_mb, seed=seed)
    _TRACES[key] = trace
    while len(_TRACES) > DEFAULT_TRACE_CACHE_SIZE:
        _TRACES.popitem(last=False)
    return trace


def clear_cache() -> None:
    """Drop all in-process memoized results and reset counters."""
    _CACHE.clear()
    _TRACES.clear()
    _STATS.update({key: 0 for key in _STATS})
    if _DISK is not None:
        _DISK.hits = 0
        _DISK.misses = 0
        _DISK.quarantined = 0
        _DISK.snap_hits = 0
        _DISK.snap_misses = 0
    if _MEMO is not None:
        _MEMO.clear()


def last_sweep_summary() -> dict | None:
    """Observability summary of the most recent parallel sweep.

    ``None`` until :func:`run_sims_parallel` has run.  The summary is a
    plain JSON-serializable dict::

        {
          "runs": 12, "ok": 11, "failed": 1,
          "cache": {"hits": 4, "misses": 8,
                    "run_retries": 1, "pool_failures": 0},
          "memo": {"enabled": True, "hits": 6, "misses": 2,
                   "stores": 14, "snapshot_bytes": 5242880,
                   "resumed_phases": 38, "corrupt": 0,
                   "prefix_forks": 3},
          "wall_clock_s": {"total": 3.2,
                           "per_run": {"st/oasis": 0.41, ...}},
          "counters": {"fault.page": ..., "migration.count": ..., ...},
        }

    ``counters`` is the merge of every successful run's metric snapshot,
    so a sweep report and the individual run traces can never disagree
    on a total.
    """
    return _LAST_SWEEP


def _spec_label(spec: dict) -> str:
    """Human-readable run label for the sweep summary."""
    label = f"{spec['app']}/{spec['policy']}"
    if spec["footprint_mb"] is not None:
        label += f"@{spec['footprint_mb']:g}MB"
    if spec["seed"]:
        label += f"#{spec['seed']}"
    return label


def cache_stats() -> dict[str, int]:
    """Hit/miss/size counters for both cache levels."""
    stats = {
        "size": len(_CACHE),
        "capacity": _cache_capacity(),
        **_STATS,
        "disk_hits": 0,
        "disk_misses": 0,
        "disk_quarantined": 0,
        "snap_hits": 0,
        "snap_misses": 0,
    }
    if _DISK is not None:
        stats.update(_DISK.stats())
    return stats


def memo_stats() -> dict:
    """Process-lifetime sweep-fast-path counters, all sources combined.

    Serial runs count on the in-process :class:`PhaseMemo`; pool runs
    ship per-run deltas back from their workers into ``_STATS`` — the
    two sources are disjoint, so their sum is the process total.
    """
    totals: dict = {
        key: _STATS["memo_" + key] for key in _MEMO_DELTA_KEYS
    }
    totals.update(
        {"prefix_forks": 0, "mem_entries": 0, "mem_bytes": 0}
    )
    memo = _MEMO
    if memo is not None:
        live = memo.stats()
        for key in _MEMO_DELTA_KEYS:
            totals[key] += live[key]
        totals["prefix_forks"] = live["prefix_forks"]
        totals["mem_entries"] = live["mem_entries"]
        totals["mem_bytes"] = live["mem_bytes"]
    totals["enabled"] = _MEMO_ENABLED
    return totals


def publish_memo_metrics(registry) -> None:
    """Publish memo counters as gauges on an obs registry.

    Serve-mode and CLI sweeps call this after each sweep so dashboards
    see the same numbers ``last_sweep_summary`` reports.
    """
    for name, value in memo_stats().items():
        registry.set_gauge(f"memo.{name}", float(value))


def _remember(key: tuple, result: SimulationResult) -> None:
    _CACHE[key] = result
    _CACHE.move_to_end(key)
    capacity = _cache_capacity()
    while len(_CACHE) > capacity:
        _CACHE.popitem(last=False)
        _STATS["evictions"] += 1


def run_sim(
    config: SystemConfig,
    app: str,
    policy: str,
    *,
    footprint_mb: float | None = None,
    seed: int = 0,
    **policy_kwargs,
) -> SimulationResult:
    """Simulate one (config, app, policy) combination, memoized."""
    if policy not in POLICY_FACTORIES:
        known = ", ".join(sorted(POLICY_FACTORIES))
        raise ValueError(f"unknown policy {policy!r}; known: {known}")
    key = (
        config,
        app,
        policy,
        footprint_mb,
        seed,
        tuple(sorted(policy_kwargs.items())),
    )
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    disk = _DISK
    if disk is not None:
        digest = cache_key(config, app, policy, footprint_mb, seed, policy_kwargs)
        stored = disk.load(digest)
        if stored is not None:
            _remember(key, stored)
            return stored
    trace = _get_trace(config, app, footprint_mb, seed)
    memo = _memo_store()
    session = None
    if memo is not None:
        session = memo.session(
            config, app, policy,
            footprint_mb=footprint_mb, seed=seed,
            policy_kwargs=policy_kwargs,
        )
    result = simulate(
        config, trace, make_policy(policy, **policy_kwargs), memo=session
    )
    if disk is not None:
        try:
            disk.store(digest, result)
        except OSError:
            # A result that cannot be persisted (disk full, injected
            # fault) is still a valid result; a later process simply
            # recomputes it.
            _STATS["store_errors"] += 1
    _remember(key, result)
    return result


# -- parallel execution ----------------------------------------------------


@dataclass
class RunFailure:
    """Structured diagnosis of one run that could not be completed.

    :func:`run_sims_parallel` puts one of these in the failed run's
    result slot instead of aborting the sweep — a 55-run sweep with one
    poisoned run yields 54 results plus one ``RunFailure``.
    """

    app: str
    policy: str
    footprint_mb: float | None = None
    seed: int = 0
    policy_kwargs: dict = field(default_factory=dict)
    #: Exception class name (``"TimeoutError"``, ``"WorkerCrash"``, ...).
    error_type: str = ""
    message: str = ""
    #: Attempts consumed before giving up.
    attempts: int = 0
    traceback: str = ""

    @property
    def ok(self) -> bool:
        return False

    def __str__(self) -> str:
        return (
            f"FAILED {self.app}/{self.policy} (seed={self.seed}): "
            f"{self.error_type}: {self.message} "
            f"[{self.attempts} attempt(s)]"
        )


def _normalize_request(request) -> dict:
    if isinstance(request, dict):
        spec = dict(request)
    else:
        config, app, policy, *rest = request
        spec = {"config": config, "app": app, "policy": policy}
        if rest:
            spec.update(rest[0])
    spec.setdefault("footprint_mb", None)
    spec.setdefault("seed", 0)
    spec.setdefault("policy_kwargs", {})
    return spec


def _spec_key(spec: dict) -> tuple:
    return (
        spec["config"],
        spec["app"],
        spec["policy"],
        spec["footprint_mb"],
        spec["seed"],
        tuple(sorted(spec["policy_kwargs"].items())),
    )


def _run_spec(spec: dict) -> SimulationResult:
    if _CHAOS is not None:
        # May raise a retryable ChaosWorkerKill before the run counts a
        # cache miss, mirroring a worker that dies pre-compute.
        _CHAOS.run_fault(spec["app"], spec["policy"])
    return run_sim(
        spec["config"],
        spec["app"],
        spec["policy"],
        footprint_mb=spec["footprint_mb"],
        seed=spec["seed"],
        **spec["policy_kwargs"],
    )


def _runner_config() -> dict:
    """Snapshot of the runner settings a worker process must inherit.

    With the ``fork`` start method workers inherit parent state anyway,
    but ``spawn`` (and a worker forked before a later ``configure()``
    call) starts from module defaults — so the full configuration rides
    in every payload.
    """
    return {
        "jobs": _JOBS,
        "disk_enabled": _DISK is not None,
        "disk_root": str(_DISK.root) if _DISK is not None else None,
        "cache_size": _cache_capacity(),
        "memo_enabled": _MEMO_ENABLED,
        "memo_dir": _MEMO_DIR,
    }


def _apply_runner_config(cfg: dict) -> None:
    os.environ["REPRO_RUNNER_CACHE_SIZE"] = str(cfg["cache_size"])
    configure(
        jobs=cfg["jobs"],
        disk_cache=cfg["disk_enabled"],
        cache_dir=cfg["disk_root"] if cfg["disk_enabled"] else None,
        memo=cfg.get("memo_enabled", False),
        memo_dir=cfg.get("memo_dir"),
    )


def _maybe_fault_hook(spec: dict) -> None:
    """Honor the harness's own fault hooks (for resilience self-tests).

    ``REPRO_HARNESS_CRASH="app:policy@/path/sentinel"`` hard-kills the
    worker (``os._exit``) the first time it runs that spec; the sentinel
    file makes the crash one-shot so the retry can succeed.  Omitting
    ``@sentinel`` crashes every attempt (a deterministically poisoned
    run).  ``REPRO_HARNESS_HANG`` sleeps instead, exercising the per-run
    timeout path, and ``REPRO_HARNESS_RAISE`` raises a retryable
    ``OSError`` in-process, exercising the retry/backoff path without
    killing the worker.
    """
    for env, action in (
        ("REPRO_HARNESS_CRASH", "crash"),
        ("REPRO_HARNESS_HANG", "hang"),
        ("REPRO_HARNESS_RAISE", "raise"),
    ):
        raw = os.environ.get(env, "").strip()
        if not raw:
            continue
        target, _, sentinel = raw.partition("@")
        if target != f"{spec['app']}:{spec['policy']}":
            continue
        if sentinel:
            if os.path.exists(sentinel):
                continue
            with open(sentinel, "w"):
                pass
        if action == "crash":
            os._exit(13)
        if action == "raise":
            raise OSError(f"injected transient failure for {target}")
        time.sleep(3600.0)


def _worker(payload: tuple) -> tuple:
    """Pool entry point: run one spec, ship back (result, memo delta).

    Workers are long-lived, so memo counters accumulate across the runs
    one worker computes; the delta (this run's counter movement plus the
    lane records drained since the last run) is what the parent merges,
    keeping the sweep's global accounting double-count-free.
    """
    spec, runner_cfg = payload
    if runner_cfg is not None:
        _apply_runner_config(runner_cfg)
        _maybe_fault_hook(spec)
    memo = _memo_store()
    before = memo.stats() if memo is not None else None
    result = _run_spec(spec)
    delta = None
    if memo is not None:
        after = memo.stats()
        delta = {
            "counters": {
                key: after[key] - before[key] for key in _MEMO_DELTA_KEYS
            },
            "lanes": memo.lanes.drain(),
        }
    return result, delta


def _merge_memo_delta(delta: dict | None) -> None:
    """Fold one worker run's memo delta into the parent's accounting."""
    if not delta:
        return
    for key, value in delta["counters"].items():
        _STATS["memo_" + key] += value
    memo = _memo_store()
    if memo is not None and delta["lanes"]:
        # Replaying through the parent's lanes recomputes shared-prefix
        # and fork accounting against the sweep-global cohort state.
        memo.lanes.replay(delta["lanes"])


def _failure_from(spec: dict, attempts: int, exc: BaseException | None,
                  error_type: str = "", message: str = "") -> RunFailure:
    if exc is not None:
        error_type = type(exc).__name__
        message = str(exc)
        tb = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    else:
        tb = ""
    return RunFailure(
        app=spec["app"],
        policy=spec["policy"],
        footprint_mb=spec["footprint_mb"],
        seed=spec["seed"],
        policy_kwargs=dict(spec["policy_kwargs"]),
        error_type=error_type,
        message=message,
        attempts=attempts,
        traceback=tb,
    )


#: Exception classes worth retrying: environmental, not deterministic.
_RETRYABLE = (OSError, EOFError, MemoryError)

#: Ceiling on one retry-backoff sleep (override with
#: ``REPRO_RETRY_BACKOFF_MAX_S``).  Without it the exponential grows
#: unboundedly — at the default 50 ms base, attempt 12 would already
#: sleep 102 s, stalling a sweep for minutes on a flaky run.
DEFAULT_RETRY_BACKOFF_MAX_S = 5.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    return default


def _backoff_delay(attempt: int) -> float:
    """Exponential backoff for retry ``attempt``, capped at a max delay."""
    base = _env_float("REPRO_RETRY_BACKOFF_S", 0.05)
    cap = _env_float("REPRO_RETRY_BACKOFF_MAX_S", DEFAULT_RETRY_BACKOFF_MAX_S)
    return min(base * (2.0 ** max(0, attempt - 1)), cap)


def _retry_backoff(attempt: int) -> None:
    delay = _backoff_delay(attempt)
    if delay:
        time.sleep(delay)


def _teardown_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a (possibly wedged) pool down hard, killing stray workers."""
    procs = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()


def _drain_pool(
    pending: dict,
    n_jobs: int,
    timeout_s: float | None,
    max_attempts: int,
    pool_failure_limit: int,
    fresh: dict,
    precounted: set,
    failures: dict,
    timings: dict | None = None,
) -> None:
    """Compute every ``pending`` run with crash/timeout isolation.

    Fills ``fresh`` (key → result) and ``failures`` (key → RunFailure).
    Keys computed in-process after a pool degradation land in
    ``precounted`` (their cache miss is already accounted).  When a
    ``timings`` dict is given, each completed run records its wall-clock
    seconds (including queueing on a busy pool) under its key.
    """
    runner_cfg = _runner_config()
    queue: deque = deque(pending.items())
    attempts = {key: 0 for key in pending}
    pool: ProcessPoolExecutor | None = ProcessPoolExecutor(max_workers=n_jobs)
    pool_failures = 0
    inflight: dict = {}
    try:
        while queue or inflight:
            broken = False
            while not broken and queue and len(inflight) < n_jobs:
                key, spec = queue.popleft()
                attempts[key] += 1
                try:
                    future = pool.submit(_worker, (spec, runner_cfg))
                except Exception:
                    attempts[key] -= 1
                    queue.appendleft((key, spec))
                    broken = True
                    break
                deadline = (
                    time.monotonic() + timeout_s if timeout_s else None
                )
                inflight[future] = (key, spec, deadline, time.monotonic())
            if not broken and inflight:
                wait_timeout = None
                deadlines = [
                    d for (_, _, d, _) in inflight.values() if d is not None
                ]
                if deadlines:
                    wait_timeout = max(
                        0.01, min(deadlines) - time.monotonic()
                    )
                done, _ = wait(
                    set(inflight),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    key, spec, _deadline, started = inflight.pop(future)
                    try:
                        result, memo_delta = future.result()
                    except BrokenProcessPool:
                        # The dead worker poisoned every in-flight future;
                        # the culprit cannot be attributed, so nobody is
                        # charged an attempt — termination is bounded by
                        # the pool-failure limit instead.
                        broken = True
                        attempts[key] -= 1
                        queue.append((key, spec))
                        continue
                    except Exception as exc:
                        if (
                            isinstance(exc, _RETRYABLE)
                            and attempts[key] < max_attempts
                        ):
                            _STATS["run_retries"] += 1
                            _retry_backoff(attempts[key])
                            queue.append((key, spec))
                        else:
                            failures[key] = _failure_from(
                                spec, attempts[key], exc
                            )
                        continue
                    _merge_memo_delta(memo_delta)
                    fresh[key] = result
                    _remember(key, result)
                    if timings is not None:
                        timings[key] = time.monotonic() - started
                now = time.monotonic()
                expired = [
                    f
                    for f, (_, _, d, _) in inflight.items()
                    if d is not None and d <= now
                ]
                for future in expired:
                    # A hung run: the only way to reclaim its worker is
                    # to tear the whole pool down.
                    broken = True
                    key, spec, _deadline, _started = inflight.pop(future)
                    if attempts[key] < max_attempts:
                        _STATS["run_retries"] += 1
                        queue.append((key, spec))
                    else:
                        failures[key] = _failure_from(
                            spec,
                            attempts[key],
                            None,
                            error_type="TimeoutError",
                            message=f"run exceeded {timeout_s}s wall clock",
                        )
            if broken:
                for future, (key, spec, _deadline, _started) in inflight.items():
                    # Innocent victims of the rebuild: no attempt charged.
                    attempts[key] -= 1
                    queue.append((key, spec))
                inflight.clear()
                _teardown_pool(pool)
                _STATS["pool_failures"] += 1
                pool_failures += 1
                if pool_failures > pool_failure_limit:
                    pool = None
                    break
                pool = ProcessPoolExecutor(max_workers=n_jobs)
    finally:
        if pool is not None:
            _teardown_pool(pool)
    if pool is None and (queue or inflight):
        # The pool keeps dying: finish the remaining work in-process.
        # (Timeouts cannot be enforced without process isolation.)
        for key, spec, *_rest in list(inflight.values()):
            queue.append((key, spec))
        while queue:
            key, spec = queue.popleft()
            attempts[key] += 1
            started = time.monotonic()
            try:
                result = _run_spec(spec)
            except Exception as exc:
                if isinstance(exc, _RETRYABLE) and attempts[key] < max_attempts:
                    _STATS["run_retries"] += 1
                    _retry_backoff(attempts[key])
                    queue.append((key, spec))
                else:
                    failures[key] = _failure_from(spec, attempts[key], exc)
                continue
            fresh[key] = result
            precounted.add(key)
            if timings is not None:
                timings[key] = time.monotonic() - started


def run_sims_parallel(
    requests,
    jobs: int | None = None,
    *,
    timeout_s: float | None = None,
    max_attempts: int | None = None,
    pool_failure_limit: int = DEFAULT_POOL_FAILURE_LIMIT,
) -> list:
    """Run many independent simulations across worker processes.

    Args:
        requests: iterable of run specs — either
            ``(config, app, policy)`` triples (optionally with a fourth
            element: a dict of ``footprint_mb`` / ``seed`` /
            ``policy_kwargs`` extras) or dicts with those keys.
        jobs: worker processes; defaults to the :func:`configure` value.
            With ``jobs=1`` everything runs serially in-process.
        timeout_s: per-run wall-clock limit (pool mode only); defaults
            to ``REPRO_RUN_TIMEOUT_S`` (unset = no limit).  A run that
            exceeds it is killed with its pool and retried.
        max_attempts: attempts per run before recording a failure;
            defaults to ``REPRO_RUN_MAX_ATTEMPTS`` (fallback 2).
        pool_failure_limit: pool rebuilds tolerated before the remaining
            work degrades to in-process serial execution.

    Returns:
        One entry per request, in request order: a
        :class:`~repro.sim.SimulationResult`, or a :class:`RunFailure`
        for a run that exhausted its attempts.  The sweep itself never
        raises for a failing run.  Each successful result also lands in
        the in-process cache (and, when enabled, the disk cache —
        workers write it, so a crashed sweep keeps its finished runs).
    """
    global _LAST_SWEEP
    if _CHAOS is not None:
        delay = _CHAOS.dispatch_delay()
        if delay:
            time.sleep(delay)
    sweep_started = time.monotonic()
    stats_before = dict(_STATS)
    memo_before = memo_stats()
    timings: dict[tuple, float] = {}
    specs = [_normalize_request(r) for r in requests]
    n_jobs = jobs if jobs is not None else _JOBS
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")
    n_jobs = min(n_jobs, max(1, len(specs)))
    if timeout_s is None:
        raw = os.environ.get("REPRO_RUN_TIMEOUT_S", "").strip()
        if raw:
            try:
                timeout_s = float(raw)
            except ValueError:
                timeout_s = None
    if max_attempts is None:
        raw = os.environ.get("REPRO_RUN_MAX_ATTEMPTS", "").strip()
        max_attempts = DEFAULT_MAX_ATTEMPTS
        if raw:
            try:
                max_attempts = max(1, int(raw))
            except ValueError:
                pass
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")

    # Only ship cache misses to the pool, and each distinct run once.
    pending: dict[tuple, dict] = {}
    for spec in specs:
        key = _spec_key(spec)
        if key not in _CACHE and key not in pending:
            pending[key] = spec

    fresh: dict[tuple, SimulationResult] = {}
    precounted: set[tuple] = set()
    failures: dict[tuple, RunFailure] = {}
    if pending and n_jobs > 1:
        _drain_pool(
            pending,
            n_jobs,
            timeout_s,
            max_attempts,
            pool_failure_limit,
            fresh,
            precounted,
            failures,
            timings,
        )

    # Assemble results in request order.  Cache accounting reconciles:
    # every request slot is exactly one hit or one miss (failures are
    # neither — they were never computed).  Work computed in the pool is
    # counted as a miss at its first request slot; duplicates and
    # already-cached specs go through run_sim (a hit).
    out: list = []
    counted: set[tuple] = set()
    for spec in specs:
        key = _spec_key(spec)
        if key in failures:
            out.append(failures[key])
            continue
        if key in fresh and key not in counted:
            counted.add(key)
            if key not in precounted:
                _STATS["misses"] += 1
            if key in _CACHE:
                _CACHE.move_to_end(key)
            out.append(fresh[key])
            continue
        started = time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            try:
                result = _run_spec(spec)
                break
            except Exception as exc:
                # Serial path (jobs=1, or a spec that failed only here):
                # retry the environmental failures the pool path would
                # retry, then diagnose instead of aborting.
                if isinstance(exc, _RETRYABLE) and attempt < max_attempts:
                    _STATS["run_retries"] += 1
                    _retry_backoff(attempt)
                    continue
                result = _failure_from(spec, attempt, exc)
                break
        if isinstance(result, RunFailure):
            out.append(result)
            continue
        timings.setdefault(key, time.monotonic() - started)
        out.append(result)

    # Sweep-level observability summary: per-run metric snapshots are
    # merged into one counter view, and cache/retry accounting is the
    # delta over this sweep only (not process lifetime).
    merged: dict[tuple, dict[str, float]] = {}
    counters: dict[str, float] = {}
    for spec, result in zip(specs, out):
        key = _spec_key(spec)
        if isinstance(result, SimulationResult) and key not in merged:
            snap_counters = result.metrics_snapshot().counters
            merged[key] = snap_counters
            for name, value in snap_counters.items():
                counters[name] = counters.get(name, 0.0) + value
    n_failed = sum(1 for r in out if isinstance(r, RunFailure))
    memo_after = memo_stats()
    _LAST_SWEEP = {
        "runs": len(specs),
        "ok": len(specs) - n_failed,
        "failed": n_failed,
        "cache": {
            name: _STATS[name] - stats_before[name]
            for name in ("hits", "misses", "run_retries", "pool_failures")
        },
        # Sweep fast path accounting, as a delta over this sweep only —
        # served and CLI sweeps read the same numbers from here.
        "memo": {
            "enabled": memo_after["enabled"],
            **{
                name: memo_after[name] - memo_before[name]
                for name in (
                    "hits", "misses", "stores", "snapshot_bytes",
                    "resumed_phases", "corrupt", "io_errors",
                    "prefix_forks",
                )
            },
        },
        "wall_clock_s": {
            "total": time.monotonic() - sweep_started,
            "per_run": {
                _spec_label(spec): timings[key]
                for spec in specs
                if (key := _spec_key(spec)) in timings
            },
        },
        "counters": {name: counters[name] for name in sorted(counters)},
    }
    if any(name.startswith("tenant.") for name in counters):
        # Multi-tenant runs in the sweep: per-tenant rollup (faults, TLB
        # pressure, migration bandwidth, busiest-GPU time) aggregated
        # over every run that carried tenant counters.
        from repro.tenancy.fairness import tenant_rollup

        _LAST_SWEEP["tenancy"] = tenant_rollup(counters)
    return out


def speedup_table(
    config: SystemConfig,
    apps: list[str],
    policies: list[str],
    baseline: str = "on_touch",
    baseline_config: SystemConfig | None = None,
    footprint_mb: dict[str, float] | None = None,
    jobs: int | None = None,
    seed: int = 0,
) -> tuple[list[list], dict[str, float]]:
    """Speedups of each policy over the baseline, per app plus geomean.

    Args:
        config: configuration for the evaluated policies.
        apps: application names (rows).
        policies: policy names (columns).
        baseline: the normalization policy (on-touch in every figure).
        baseline_config: optional distinct config for the baseline run
            (defaults to ``config``).
        footprint_mb: optional per-app footprint override.
        jobs: pre-warm the caches with this many worker processes
            (defaults to the :func:`configure` value; 1 = serial).
        seed: workload seed applied to every cell (baseline included),
            so multi-seed sweeps measure run-to-run variance on distinct
            but equally shaped traces.

    Returns:
        ``(rows, geomeans)`` where each row is
        ``[app, speedup_policy1, ...]`` and ``geomeans`` maps policy name
        to its geometric-mean speedup.
    """
    base_cfg = baseline_config or config
    n_jobs = jobs if jobs is not None else _JOBS
    if n_jobs > 1:
        requests = []
        for app in apps:
            mb = footprint_mb.get(app) if footprint_mb else None
            extras = {"footprint_mb": mb, "seed": seed}
            requests.append((base_cfg, app, baseline, extras))
            for policy in policies:
                requests.append((config, app, policy, extras))
        run_sims_parallel(requests, jobs=n_jobs)
    rows = []
    per_policy: dict[str, list[float]] = {p: [] for p in policies}
    for app in apps:
        mb = footprint_mb.get(app) if footprint_mb else None
        base = run_sim(base_cfg, app, baseline, footprint_mb=mb, seed=seed)
        row: list = [app]
        for policy in policies:
            result = run_sim(config, app, policy, footprint_mb=mb, seed=seed)
            speedup = result.speedup_over(base)
            row.append(speedup)
            per_policy[policy].append(speedup)
        rows.append(row)
    geomeans = {p: geomean(v) for p, v in per_policy.items()}
    rows.append(["geomean", *(geomeans[p] for p in policies)])
    return rows, geomeans
