"""Cached simulation runner.

Several figures share (config, workload, policy) combinations — Fig. 2 is
a subset of Fig. 15, Figs. 22/23/24 reuse the same OASIS/GRIT runs — so
simulation results are memoized at two levels:

* **in process** — a bounded LRU keyed by the full parameter tuple
  (``SystemConfig`` is a frozen dataclass, so the whole configuration is
  hashable).  The bound (default 256 results, override with
  ``REPRO_RUNNER_CACHE_SIZE``) keeps long sweep sessions from holding
  every result ever computed.
* **on disk** — optionally, a persistent content-addressed store (see
  :mod:`repro.harness.diskcache`) shared across processes and sessions.
  Enable with :func:`configure` or ``REPRO_DISK_CACHE=1``.

Independent runs can also be computed in parallel across worker
processes with :func:`run_sims_parallel`; :func:`speedup_table` uses it
to pre-warm the caches when ``jobs > 1``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

from repro import POLICY_FACTORIES, make_policy
from repro.config import SystemConfig
from repro.harness.diskcache import DiskCache, cache_key
from repro.harness.report import geomean
from repro.sim import SimulationResult, simulate
from repro.workloads import get_workload

#: Default cap on in-process memoized results.
DEFAULT_CACHE_SIZE = 256

_CACHE: OrderedDict[tuple, SimulationResult] = OrderedDict()
_STATS = {"hits": 0, "misses": 0, "evictions": 0}
_DISK: DiskCache | None = (
    DiskCache() if os.environ.get("REPRO_DISK_CACHE", "").strip() not in ("", "0")
    else None
)
_JOBS = 1


def _cache_capacity() -> int:
    raw = os.environ.get("REPRO_RUNNER_CACHE_SIZE", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_CACHE_SIZE


def configure(
    jobs: int | None = None,
    disk_cache: bool | None = None,
    cache_dir: str | None = None,
) -> None:
    """Adjust runner-wide settings.

    Args:
        jobs: default worker-process count for :func:`run_sims_parallel`
            and :func:`speedup_table` (1 = serial).
        disk_cache: enable/disable the persistent result store.
        cache_dir: directory for the persistent store (implies enabling
            it); defaults to ``results/cache`` / ``REPRO_CACHE_DIR``.
    """
    global _DISK, _JOBS
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        _JOBS = jobs
    if cache_dir is not None:
        _DISK = DiskCache(cache_dir)
    elif disk_cache is not None:
        _DISK = DiskCache() if disk_cache else None


def clear_cache() -> None:
    """Drop all in-process memoized results and reset counters."""
    _CACHE.clear()
    _STATS.update(hits=0, misses=0, evictions=0)
    if _DISK is not None:
        _DISK.hits = 0
        _DISK.misses = 0


def cache_stats() -> dict[str, int]:
    """Hit/miss/size counters for both cache levels."""
    stats = {
        "size": len(_CACHE),
        "capacity": _cache_capacity(),
        **_STATS,
        "disk_hits": 0,
        "disk_misses": 0,
    }
    if _DISK is not None:
        stats.update(_DISK.stats())
    return stats


def _remember(key: tuple, result: SimulationResult) -> None:
    _CACHE[key] = result
    _CACHE.move_to_end(key)
    capacity = _cache_capacity()
    while len(_CACHE) > capacity:
        _CACHE.popitem(last=False)
        _STATS["evictions"] += 1


def run_sim(
    config: SystemConfig,
    app: str,
    policy: str,
    *,
    footprint_mb: float | None = None,
    seed: int = 0,
    **policy_kwargs,
) -> SimulationResult:
    """Simulate one (config, app, policy) combination, memoized."""
    if policy not in POLICY_FACTORIES:
        known = ", ".join(sorted(POLICY_FACTORIES))
        raise ValueError(f"unknown policy {policy!r}; known: {known}")
    key = (
        config,
        app,
        policy,
        footprint_mb,
        seed,
        tuple(sorted(policy_kwargs.items())),
    )
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    disk = _DISK
    if disk is not None:
        digest = cache_key(config, app, policy, footprint_mb, seed, policy_kwargs)
        stored = disk.load(digest)
        if stored is not None:
            _remember(key, stored)
            return stored
    trace = get_workload(app, config, footprint_mb=footprint_mb, seed=seed)
    result = simulate(config, trace, make_policy(policy, **policy_kwargs))
    if disk is not None:
        disk.store(digest, result)
    _remember(key, result)
    return result


# -- parallel execution ----------------------------------------------------


def _normalize_request(request) -> dict:
    if isinstance(request, dict):
        spec = dict(request)
    else:
        config, app, policy, *rest = request
        spec = {"config": config, "app": app, "policy": policy}
        if rest:
            spec.update(rest[0])
    spec.setdefault("footprint_mb", None)
    spec.setdefault("seed", 0)
    spec.setdefault("policy_kwargs", {})
    return spec


def _worker(payload: tuple) -> SimulationResult:
    spec, disk_enabled, disk_root = payload
    if disk_enabled and _DISK is None:
        configure(disk_cache=True, cache_dir=disk_root)
    return run_sim(
        spec["config"],
        spec["app"],
        spec["policy"],
        footprint_mb=spec["footprint_mb"],
        seed=spec["seed"],
        **spec["policy_kwargs"],
    )


def run_sims_parallel(requests, jobs: int | None = None) -> list[SimulationResult]:
    """Run many independent simulations across worker processes.

    Args:
        requests: iterable of run specs — either
            ``(config, app, policy)`` triples (optionally with a fourth
            element: a dict of ``footprint_mb`` / ``seed`` /
            ``policy_kwargs`` extras) or dicts with those keys.
        jobs: worker processes; defaults to the :func:`configure` value.
            With ``jobs=1`` everything runs serially in-process.

    Returns:
        Results in request order.  Each result also lands in the
        in-process cache (and, when enabled, the disk cache — workers
        write it, so a crashed sweep keeps its finished runs).
    """
    specs = [_normalize_request(r) for r in requests]
    n_jobs = jobs if jobs is not None else _JOBS
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")
    n_jobs = min(n_jobs, max(1, len(specs)))
    if n_jobs == 1:
        return [_worker((spec, False, None)) for spec in specs]

    def spec_key(spec: dict) -> tuple:
        return (
            spec["config"],
            spec["app"],
            spec["policy"],
            spec["footprint_mb"],
            spec["seed"],
            tuple(sorted(spec["policy_kwargs"].items())),
        )

    # Only ship cache misses to the pool, and each distinct run once.
    pending: dict[tuple, dict] = {}
    for spec in specs:
        key = spec_key(spec)
        if key not in _CACHE and key not in pending:
            pending[key] = spec
    if pending:
        disk_enabled = _DISK is not None
        disk_root = str(_DISK.root) if disk_enabled else None
        payloads = [
            (spec, disk_enabled, disk_root) for spec in pending.values()
        ]
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            for key, result in zip(pending, pool.map(_worker, payloads)):
                _STATS["misses"] += 1
                _remember(key, result)
    return [
        run_sim(
            spec["config"],
            spec["app"],
            spec["policy"],
            footprint_mb=spec["footprint_mb"],
            seed=spec["seed"],
            **spec["policy_kwargs"],
        )
        for spec in specs
    ]


def speedup_table(
    config: SystemConfig,
    apps: list[str],
    policies: list[str],
    baseline: str = "on_touch",
    baseline_config: SystemConfig | None = None,
    footprint_mb: dict[str, float] | None = None,
    jobs: int | None = None,
) -> tuple[list[list], dict[str, float]]:
    """Speedups of each policy over the baseline, per app plus geomean.

    Args:
        config: configuration for the evaluated policies.
        apps: application names (rows).
        policies: policy names (columns).
        baseline: the normalization policy (on-touch in every figure).
        baseline_config: optional distinct config for the baseline run
            (defaults to ``config``).
        footprint_mb: optional per-app footprint override.
        jobs: pre-warm the caches with this many worker processes
            (defaults to the :func:`configure` value; 1 = serial).

    Returns:
        ``(rows, geomeans)`` where each row is
        ``[app, speedup_policy1, ...]`` and ``geomeans`` maps policy name
        to its geometric-mean speedup.
    """
    base_cfg = baseline_config or config
    n_jobs = jobs if jobs is not None else _JOBS
    if n_jobs > 1:
        requests = []
        for app in apps:
            mb = footprint_mb.get(app) if footprint_mb else None
            extras = {"footprint_mb": mb}
            requests.append((base_cfg, app, baseline, extras))
            for policy in policies:
                requests.append((config, app, policy, extras))
        run_sims_parallel(requests, jobs=n_jobs)
    rows = []
    per_policy: dict[str, list[float]] = {p: [] for p in policies}
    for app in apps:
        mb = footprint_mb.get(app) if footprint_mb else None
        base = run_sim(base_cfg, app, baseline, footprint_mb=mb)
        row: list = [app]
        for policy in policies:
            result = run_sim(config, app, policy, footprint_mb=mb)
            speedup = result.speedup_over(base)
            row.append(speedup)
            per_policy[policy].append(speedup)
        rows.append(row)
    geomeans = {p: geomean(v) for p, v in per_policy.items()}
    rows.append(["geomean", *(geomeans[p] for p in policies)])
    return rows, geomeans
