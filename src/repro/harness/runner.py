"""Cached simulation runner.

Several figures share (config, workload, policy) combinations — Fig. 2 is
a subset of Fig. 15, Figs. 22/23/24 reuse the same OASIS/GRIT runs — so
simulation results are memoized per process.  ``SystemConfig`` is a frozen
dataclass, which makes the full configuration part of the cache key.
"""

from __future__ import annotations

from repro import POLICY_FACTORIES, make_policy
from repro.config import SystemConfig
from repro.harness.report import geomean
from repro.sim import SimulationResult, simulate
from repro.workloads import get_workload

_CACHE: dict[tuple, SimulationResult] = {}


def clear_cache() -> None:
    """Drop all memoized simulation results."""
    _CACHE.clear()


def run_sim(
    config: SystemConfig,
    app: str,
    policy: str,
    *,
    footprint_mb: float | None = None,
    seed: int = 0,
    **policy_kwargs,
) -> SimulationResult:
    """Simulate one (config, app, policy) combination, memoized."""
    if policy not in POLICY_FACTORIES:
        known = ", ".join(sorted(POLICY_FACTORIES))
        raise ValueError(f"unknown policy {policy!r}; known: {known}")
    key = (
        config,
        app,
        policy,
        footprint_mb,
        seed,
        tuple(sorted(policy_kwargs.items())),
    )
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    trace = get_workload(app, config, footprint_mb=footprint_mb, seed=seed)
    result = simulate(config, trace, make_policy(policy, **policy_kwargs))
    _CACHE[key] = result
    return result


def speedup_table(
    config: SystemConfig,
    apps: list[str],
    policies: list[str],
    baseline: str = "on_touch",
    baseline_config: SystemConfig | None = None,
    footprint_mb: dict[str, float] | None = None,
) -> tuple[list[list], dict[str, float]]:
    """Speedups of each policy over the baseline, per app plus geomean.

    Args:
        config: configuration for the evaluated policies.
        apps: application names (rows).
        policies: policy names (columns).
        baseline: the normalization policy (on-touch in every figure).
        baseline_config: optional distinct config for the baseline run
            (defaults to ``config``).
        footprint_mb: optional per-app footprint override.

    Returns:
        ``(rows, geomeans)`` where each row is
        ``[app, speedup_policy1, ...]`` and ``geomeans`` maps policy name
        to its geometric-mean speedup.
    """
    base_cfg = baseline_config or config
    rows = []
    per_policy: dict[str, list[float]] = {p: [] for p in policies}
    for app in apps:
        mb = footprint_mb.get(app) if footprint_mb else None
        base = run_sim(base_cfg, app, baseline, footprint_mb=mb)
        row: list = [app]
        for policy in policies:
            result = run_sim(config, app, policy, footprint_mb=mb)
            speedup = result.speedup_over(base)
            row.append(speedup)
            per_policy[policy].append(speedup)
        rows.append(row)
    geomeans = {p: geomean(v) for p, v in per_policy.items()}
    rows.append(["geomean", *(geomeans[p] for p in policies)])
    return rows, geomeans
