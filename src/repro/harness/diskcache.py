"""Persistent on-disk store for simulation results.

Simulations are deterministic functions of (system config, application,
footprint, seed, policy, policy kwargs), so their results can be reused
across processes and sessions, not just within one interpreter.  The
store keys each run by a SHA-256 content hash of that full parameter
tuple — plus a simulator-version salt and the replay-path selection, so
a semantic change to the simulator or an ``REPRO_FORCE_SLOW_PATH`` A/B
run can never read a stale entry — and keeps one JSON file per result
under ``results/cache/`` (override with ``REPRO_CACHE_DIR``).

Writes are atomic and durable (temp file + ``fsync`` + ``os.replace`` +
directory ``fsync``), so concurrent workers racing on the same key at
worst both compute it; neither can observe a half-written file, and a
power loss after :meth:`DiskCache.store` returns cannot roll the entry
back.  Set ``REPRO_NO_FSYNC=1`` to skip the durability barriers for
test speed (atomicity is unaffected).

Every entry carries a content checksum over its result payload.  A load
that finds a truncated, unparsable, mislabeled or checksum-mismatched
file treats it as a miss, moves the file into ``<root>/quarantine/`` for
post-mortem inspection, and counts it in :meth:`DiskCache.stats` — a
corrupted cache (killed worker mid-write on a non-atomic filesystem,
bit rot, manual tampering) can never crash a sweep or serve wrong data.

Besides whole-run results, the store holds a second record kind:
**phase-boundary snapshot blobs** (see :mod:`repro.sim.snapshot`) under
``<root>/snap/``, with the same atomic-write, checksum and quarantine
discipline (:meth:`DiskCache.store_blob` / :meth:`DiskCache.load_blob`).
Snapshot payloads are opaque bytes here — the snapshot layer runs its
own structural validation on top and calls
:meth:`DiskCache.quarantine_blob` for entries that decode but lie.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.config import SystemConfig
from repro.sim.fastpath import force_slow_path
from repro.sim.results import SimulationResult

#: Bump whenever simulator semantics change in a way that alters results;
#: every previously cached entry becomes unreachable (stale files are
#: inert JSON and can be deleted with ``repro-oasis``'s cache pruning or
#: a plain ``rm -r``).
SIMULATOR_VERSION = 1

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = "results/cache"

#: Chaos-injection hook (see :mod:`repro.chaos.inject`); None = inert.
_CHAOS = None


def fsync_enabled() -> bool:
    """Durability barriers are on unless ``REPRO_NO_FSYNC`` is set."""
    return os.environ.get("REPRO_NO_FSYNC", "").strip() in ("", "0")


def fsync_dir(path: Path) -> None:
    """Flush directory metadata (new/renamed names) to stable storage."""
    if not fsync_enabled():
        return
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms without O_RDONLY directory opens
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _canonical(value):
    """Insertion-order-independent, JSON-serializable form of a value.

    ``json.dumps(..., sort_keys=True)`` only canonicalizes dicts with
    uniformly sortable keys; anything that falls through to
    ``default=repr`` (sets, non-string-keyed mappings, arbitrary
    objects) keeps its insertion/iteration order in the blob, so two
    semantically equal ``policy_kwargs`` could hash to different cache
    keys.  Canonicalize recursively instead: mappings become pair lists
    sorted by their canonical-key JSON, sets become sorted element
    lists, dataclasses flatten through ``asdict``, and only opaque
    leaves fall back to ``repr``.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        items = [
            (json.dumps(_canonical(k), sort_keys=True), _canonical(v))
            for k, v in value.items()
        ]
        items.sort(key=lambda kv: kv[0])
        return {"__map__": items}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                json.dumps(_canonical(v), sort_keys=True) for v in value
            )
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": _canonical(dataclasses.asdict(value)),
        }
    return {"__repr__": repr(value)}


def cache_key(
    config: SystemConfig,
    app: str,
    policy: str,
    footprint_mb: float | None,
    seed: int,
    policy_kwargs: dict,
) -> str:
    """Content hash identifying one simulation run.

    ``policy_kwargs`` is canonicalized recursively (see
    :func:`_canonical`), so equal-but-reordered kwargs — including
    nested dict values and non-string keys — always hash to the same
    entry.
    """
    payload = {
        "simulator_version": SIMULATOR_VERSION,
        "slow_path": force_slow_path(),
        "config": dataclasses.asdict(config),
        "app": app,
        "policy": policy,
        "footprint_mb": footprint_mb,
        "seed": seed,
        "policy_kwargs": _canonical(policy_kwargs),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _result_checksum(result_dict: dict) -> str:
    """Content checksum of one serialized result."""
    blob = json.dumps(result_dict, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class DiskCache:
    """One directory of content-addressed simulation results."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.snap_hits = 0
        self.snap_misses = 0

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings manageable.
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is inspectable but inert."""
        target = self.root / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # Can't move it (e.g. racing worker already did, or read-only
            # store): the load already counted the miss, and nothing was
            # quarantined — leave the counter alone so stats() stays
            # truthful.
            return
        self.quarantined += 1

    def _atomic_write(self, path: Path, payload: dict, category: str) -> Path:
        """Durably write one JSON entry: tmp + fsync + rename + dir fsync.

        The ``category`` routes the operation through the chaos hook:
        an injected "oserror" surfaces as a plain :class:`OSError`; an
        injected torn write leaves a *truncated* payload at the final
        path while the caller sees success — exactly the failure the
        checksum/quarantine read side exists to absorb.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(payload)
        fault = _CHAOS.write_fault(category, path) if _CHAOS is not None else None
        if fault is not None:
            if fault.mode == "oserror":
                raise OSError(f"chaos: injected {category} write error")
            path.write_text(data[: max(1, int(len(data) * fault.fraction))])
            return path
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(data)
                if fsync_enabled():
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        fsync_dir(path.parent)
        if _CHAOS is not None:
            _CHAOS.post_write(category, path)
        return path

    def load(self, key: str) -> SimulationResult | None:
        """The stored result for ``key``, or None on miss/corruption.

        Corrupt entries — truncated or unparsable JSON, missing fields,
        a key that does not match the filename, or a checksum mismatch —
        are quarantined rather than raised: a damaged cache degrades to
        recomputation, never to a crashed or wrong-answer sweep.
        """
        path = self._path(key)
        try:
            if _CHAOS is not None:
                _CHAOS.read_fault("result", path)
            with path.open() as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, EOFError):
            self.misses += 1
            self._quarantine(path)
            return None
        except OSError:
            self.misses += 1
            return None
        try:
            if payload["key"] != key:
                raise ValueError("entry key does not match its filename")
            result_dict = payload["result"]
            if payload["checksum"] != _result_checksum(result_dict):
                raise ValueError("checksum mismatch")
            result = SimulationResult.from_dict(result_dict)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` atomically; returns the path."""
        result_dict = result.to_dict()
        payload = {
            "key": key,
            "simulator_version": SIMULATOR_VERSION,
            "checksum": _result_checksum(result_dict),
            "result": result_dict,
        }
        return self._atomic_write(self._path(key), payload, "result")

    def has(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no validation)."""
        return self._path(key).exists()

    # -- snapshot blobs ----------------------------------------------------

    def _blob_path(self, key: str) -> Path:
        return self.root / "snap" / key[:2] / f"{key}.json"

    def has_blob(self, key: str) -> bool:
        return self._blob_path(key).exists()

    def load_blob(self, key: str) -> bytes | None:
        """The stored snapshot blob for ``key``, or None.

        The same degradation contract as :meth:`load`: anything
        truncated, unparsable, mislabeled or checksum-mismatched is
        quarantined and reported as a miss, never raised.
        """
        path = self._blob_path(key)
        try:
            if _CHAOS is not None:
                _CHAOS.read_fault("blob", path)
            with path.open() as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.snap_misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, EOFError):
            self.snap_misses += 1
            self._quarantine(path)
            return None
        except OSError:
            self.snap_misses += 1
            return None
        try:
            if payload["key"] != key:
                raise ValueError("entry key does not match its filename")
            blob = base64.b64decode(payload["blob"], validate=True)
            if payload["checksum"] != hashlib.sha256(blob).hexdigest():
                raise ValueError("checksum mismatch")
        except (KeyError, TypeError, ValueError):
            self.snap_misses += 1
            self._quarantine(path)
            return None
        self.snap_hits += 1
        return blob

    def store_blob(self, key: str, blob: bytes) -> Path:
        """Persist a snapshot blob under ``key`` atomically."""
        payload = {
            "key": key,
            "simulator_version": SIMULATOR_VERSION,
            "checksum": hashlib.sha256(blob).hexdigest(),
            "blob": base64.b64encode(blob).decode("ascii"),
        }
        return self._atomic_write(self._blob_path(key), payload, "blob")

    def quarantine_blob(self, key: str) -> None:
        """Move a structurally-invalid snapshot aside (checksum passed,
        but the snapshot layer's validation rejected the contents)."""
        path = self._blob_path(key)
        if path.exists():
            self._quarantine(path)

    def stats(self) -> dict[str, int]:
        return {
            "disk_hits": self.hits,
            "disk_misses": self.misses,
            "disk_quarantined": self.quarantined,
            "snap_hits": self.snap_hits,
            "snap_misses": self.snap_misses,
        }


class SharedResultStore:
    """Two-tier result store: bounded in-memory LRU over a shared DiskCache.

    The cluster layer points every worker *and* the router at one shared
    cache directory.  Workers populate it through the normal
    :func:`repro.harness.runner.run_sim` store path; the router (and any
    other reader) goes through this class, which keeps the hottest
    ``capacity`` results in process memory so the steady-state cost of a
    repeat request is a dict lookup, not a file parse.

    The disk tier keeps all of :class:`DiskCache`'s guarantees — atomic
    writes, per-entry checksums, quarantine-on-corruption — so a torn or
    bit-rotted shared entry degrades to a recompute on whichever worker
    owns the key, never to wrong data.  All methods are thread-safe: the
    router reads from executor threads while its event loop routes.
    """

    def __init__(self, root: str | Path | None = None, *,
                 capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.disk = DiskCache(root)
        self.capacity = capacity
        self._lru: "OrderedDict[str, SimulationResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.lru_hits = 0
        self.shared_hits = 0
        self.misses = 0
        self.stores = 0
        self.store_errors = 0
        self.evictions = 0

    @property
    def root(self) -> Path:
        return self.disk.root

    def _remember_locked(self, key: str, result: SimulationResult) -> None:
        self._lru[key] = result
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.evictions += 1

    def load(self, key: str) -> SimulationResult | None:
        """LRU first, then the shared disk tier; None on a full miss."""
        with self._lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._lru.move_to_end(key)
                self.lru_hits += 1
                return cached
        result = self.disk.load(key)
        with self._lock:
            if result is None:
                self.misses += 1
                return None
            self.shared_hits += 1
            self._remember_locked(key, result)
        return result

    def store(self, key: str, result: SimulationResult) -> bool:
        """Write through to the shared tier; False if the disk write failed.

        A failed disk write still populates the LRU — the result is
        correct, it just is not durable/shared, and the caller's
        ``store_errors`` counter says so.
        """
        ok = True
        try:
            self.disk.store(key, result)
        except OSError:
            ok = False
        with self._lock:
            self._remember_locked(key, result)
            if ok:
                self.stores += 1
            else:
                self.store_errors += 1
        return ok

    def remember(self, key: str, result: SimulationResult) -> None:
        """LRU-only insert — for results some *other* process already
        persisted to the shared tier (e.g. a worker's own store path),
        where a second disk write would be pure redundancy."""
        with self._lock:
            self._remember_locked(key, result)

    def contains(self, key: str) -> bool:
        """Whether the key is available in either tier (no promotion)."""
        with self._lock:
            if key in self._lru:
                return True
        return self.disk.has(key)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "lru_size": len(self._lru),
                "lru_hits": self.lru_hits,
                "shared_hits": self.shared_hits,
                "misses": self.misses,
                "stores": self.stores,
                "store_errors": self.store_errors,
                "evictions": self.evictions,
                "disk": self.disk.stats(),
            }
