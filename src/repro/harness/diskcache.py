"""Persistent on-disk store for simulation results.

Simulations are deterministic functions of (system config, application,
footprint, seed, policy, policy kwargs), so their results can be reused
across processes and sessions, not just within one interpreter.  The
store keys each run by a SHA-256 content hash of that full parameter
tuple — plus a simulator-version salt and the replay-path selection, so
a semantic change to the simulator or an ``REPRO_FORCE_SLOW_PATH`` A/B
run can never read a stale entry — and keeps one JSON file per result
under ``results/cache/`` (override with ``REPRO_CACHE_DIR``).

Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing on the same key at worst both compute it; neither can observe a
half-written file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.config import SystemConfig
from repro.sim.fastpath import force_slow_path
from repro.sim.results import SimulationResult

#: Bump whenever simulator semantics change in a way that alters results;
#: every previously cached entry becomes unreachable (stale files are
#: inert JSON and can be deleted with ``repro-oasis``'s cache pruning or
#: a plain ``rm -r``).
SIMULATOR_VERSION = 1

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = "results/cache"


def cache_key(
    config: SystemConfig,
    app: str,
    policy: str,
    footprint_mb: float | None,
    seed: int,
    policy_kwargs: dict,
) -> str:
    """Content hash identifying one simulation run."""
    payload = {
        "simulator_version": SIMULATOR_VERSION,
        "slow_path": force_slow_path(),
        "config": dataclasses.asdict(config),
        "app": app,
        "policy": policy,
        "footprint_mb": footprint_mb,
        "seed": seed,
        "policy_kwargs": sorted(policy_kwargs.items()),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class DiskCache:
    """One directory of content-addressed simulation results."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings manageable.
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> SimulationResult | None:
        """The stored result for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with path.open() as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        try:
            result = SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` atomically; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "simulator_version": SIMULATOR_VERSION,
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def stats(self) -> dict[str, int]:
        return {"disk_hits": self.hits, "disk_misses": self.misses}
