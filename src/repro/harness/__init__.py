"""Experiment harness: one entry per paper table/figure.

Use :func:`~repro.harness.experiments.run_experiment` (or the benchmarks
under ``benchmarks/``) to regenerate any table or figure of the paper::

    from repro.harness import run_experiment
    result = run_experiment("fig15")
    print(result.render())
"""

from repro.harness.diskcache import DiskCache
from repro.harness.experiments import (
    EXPERIMENTS,
    SEEDED_EXPERIMENTS,
    run_experiment,
)
from repro.harness.report import (
    ExperimentResult,
    counter_table,
    format_table,
    geomean,
)
from repro.harness.runner import (
    RunFailure,
    cache_stats,
    clear_cache,
    configure,
    disk_cache,
    last_sweep_summary,
    memo_stats,
    publish_memo_metrics,
    run_sim,
    run_sims_parallel,
    speedup_table,
)

__all__ = [
    "EXPERIMENTS",
    "SEEDED_EXPERIMENTS",
    "DiskCache",
    "ExperimentResult",
    "RunFailure",
    "cache_stats",
    "clear_cache",
    "configure",
    "counter_table",
    "disk_cache",
    "format_table",
    "geomean",
    "last_sweep_summary",
    "memo_stats",
    "publish_memo_metrics",
    "run_experiment",
    "run_sim",
    "run_sims_parallel",
    "speedup_table",
]
