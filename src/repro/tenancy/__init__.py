"""Multi-tenant co-scheduling: mixes, attribution, fairness.

``repro.tenancy`` lets 2--4 of the registry workloads share one
simulated machine: :mod:`repro.tenancy.mix` merges their traces into a
single multi-tenant :class:`~repro.workloads.base.Trace` with disjoint
address windows and burst-interleaved records; the machine attributes
TLB/fault/driver/migration work per tenant (``tenant.<name>.*``
counters, :mod:`repro.tenancy.accounting`); and
:mod:`repro.tenancy.fairness` turns shared-vs-solo timings into
slowdown / weighted-speedup / unfairness reports.

Mixes are addressed by name — ``get_workload("mm+bfs", config)`` — so
the whole harness (memoized sweeps, serve, cluster) runs them without
modification: ``repro-oasis sweep --tenants mm+bfs,mm+i2c``.
"""

from repro.tenancy.accounting import TenancyAccounting
from repro.tenancy.fairness import (
    fairness_report,
    mix_fairness,
    publish_fairness_metrics,
    quartiles,
    shared_time_ns,
    solo_time_ns,
    tenant_counters,
    tenant_names,
    tenant_rollup,
)
from repro.tenancy.mix import (
    MAX_TENANTS,
    TenantInfo,
    TenantMix,
    TenantSpec,
    build_mix_trace,
    get_mix_workload,
    merge_traces,
    parse_mix,
    single_tenant_trace,
    trace_digest,
)

__all__ = [
    "MAX_TENANTS",
    "TenancyAccounting",
    "TenantInfo",
    "TenantMix",
    "TenantSpec",
    "build_mix_trace",
    "fairness_report",
    "get_mix_workload",
    "merge_traces",
    "mix_fairness",
    "parse_mix",
    "publish_fairness_metrics",
    "quartiles",
    "shared_time_ns",
    "single_tenant_trace",
    "solo_time_ns",
    "tenant_counters",
    "tenant_names",
    "tenant_rollup",
    "trace_digest",
]
