"""Tenant mixes: specs, disjoint address windows, and the interleaver.

A :class:`TenantMix` names 2--4 workloads (with per-tenant seed and
footprint overrides) to co-schedule on one simulated machine.  The merge
gives every tenant a **disjoint base-address window** — a power-of-two
span of pages large enough for the largest tenant, so window membership
is a single shift/compare — rebases each tenant's objects into its
window, and interleaves the per-tenant record streams phase by phase
with the same stable ``np.lexsort`` burst round-robin the
:class:`~repro.workloads.base.TraceBuilder` uses for GPUs.  Phase
boundaries stay aligned: merged phase *k* carries every tenant's phase
*k* records, and the barrier at its end synchronizes all tenants.

A single-tenant mix runs through the identical merge machinery with a
zero shift, keeps the solo object/phase/trace names, and attaches **no**
tenant metadata — so the machine treats it exactly like the plain solo
trace and the result is bit-identical (the ``tenancy`` differential lane
pins this).

Mix names are strings like ``"mm+bfs"``; each tenant token accepts
optional suffixes ``@<footprint_mb>`` and ``#<seed>``
(e.g. ``"mm@16#3+bfs@16"``).  :func:`get_mix_workload` memoizes built
mixes by their canonical label plus build parameters, mirroring the
application registry cache.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.memory.address_space import ADDR_BITS, Allocation
from repro.workloads.base import DEFAULT_BURST, ObjectDef, PhaseTrace, Trace

#: Inclusive bounds on the number of tenants in one mix.
MIN_TENANTS = 1
MAX_TENANTS = 4

_TOKEN_RE = re.compile(
    r"^(?P<app>[A-Za-z][A-Za-z0-9_]*)"
    r"(?:@(?P<mb>[0-9]+(?:\.[0-9]+)?))?"
    r"(?:#(?P<seed>[0-9]+))?$"
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant in a mix: a registry application plus overrides.

    ``seed=None`` derives the tenant seed from the mix seed and the
    tenant's index (``mix_seed + index``), so distinct tenants of the
    same application never replay identical streams by accident.
    ``footprint_mb=None`` falls back to the mix-level footprint (or the
    application's Table II default).
    """

    name: str
    app: str
    seed: int | None = None
    footprint_mb: float | None = None

    def token(self) -> str:
        """Canonical mix-string token for this spec."""
        part = self.app
        if self.footprint_mb is not None:
            part += f"@{self.footprint_mb:g}"
        if self.seed is not None:
            part += f"#{self.seed}"
        return part


@dataclass(frozen=True)
class TenantInfo:
    """Resolved per-tenant metadata attached to a merged trace."""

    name: str
    app: str
    index: int
    seed: int
    footprint_mb: float | None
    first_page: int
    n_pages: int

    @property
    def last_page(self) -> int:
        """Inclusive index of the tenant window's final occupied page."""
        return self.first_page + self.n_pages - 1


@dataclass(frozen=True)
class TenantMix:
    """A named set of tenants to co-schedule (1--4, unique names)."""

    tenants: tuple[TenantSpec, ...]
    burst: int = DEFAULT_BURST

    def __post_init__(self) -> None:
        n = len(self.tenants)
        if not MIN_TENANTS <= n <= MAX_TENANTS:
            raise ValueError(
                f"a mix needs {MIN_TENANTS}..{MAX_TENANTS} tenants, got {n}"
            )
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in mix: {names}")
        for name in names:
            if "." in name or "+" in name:
                raise ValueError(
                    f"tenant name {name!r} may not contain '.' or '+'"
                )
        if self.burst < 1:
            raise ValueError("burst must be >= 1")

    @property
    def label(self) -> str:
        """Canonical mix string (round-trips through :func:`parse_mix`)."""
        return "+".join(t.token() for t in self.tenants)


def parse_mix(text: str) -> TenantMix:
    """Parse a mix string like ``"mm+bfs"`` or ``"mm@16#3+bfs@16"``.

    Duplicate applications get deterministic distinct tenant names:
    the first occurrence keeps the bare application name, the *k*-th
    is suffixed (``mm``, ``mm2``, ``mm3`` ...).
    """
    tokens = [t.strip() for t in text.split("+")]
    if any(not t for t in tokens):
        raise ValueError(f"malformed mix string {text!r}")
    specs: list[TenantSpec] = []
    seen: dict[str, int] = {}
    for token in tokens:
        match = _TOKEN_RE.match(token)
        if match is None:
            raise ValueError(
                f"malformed tenant token {token!r} in mix {text!r} "
                "(expected app[@footprint_mb][#seed])"
            )
        app = match.group("app").lower()
        count = seen.get(app, 0) + 1
        seen[app] = count
        name = app if count == 1 else f"{app}{count}"
        specs.append(
            TenantSpec(
                name=name,
                app=app,
                seed=(
                    int(match.group("seed"))
                    if match.group("seed") is not None
                    else None
                ),
                footprint_mb=(
                    float(match.group("mb"))
                    if match.group("mb") is not None
                    else None
                ),
            )
        )
    return TenantMix(tenants=tuple(specs))


def _window_pages(traces: list[Trace]) -> int:
    """Power-of-two page window wide enough for the largest tenant."""
    widest = max(t.n_pages for t in traces)
    return 1 << (widest - 1).bit_length() if widest > 1 else 1


def _rebased_objects(
    trace: Trace, tenant_name: str, shift_pages: int, next_obj_id: int,
    prefix: bool,
) -> list[ObjectDef]:
    page_size = trace.page_size
    shift_bytes = shift_pages * page_size
    objects = []
    for obj in trace.objects:
        objects.append(
            ObjectDef(
                name=f"{tenant_name}.{obj.name}" if prefix else obj.name,
                size_bytes=obj.size_bytes,
                obj_id=next_obj_id + len(objects),
                allocation=Allocation(
                    base=obj.allocation.base + shift_bytes,
                    size=obj.allocation.size,
                    page_size=page_size,
                ),
                alloc_phase=obj.alloc_phase,
                free_phase=obj.free_phase,
            )
        )
    return objects


def merge_traces(
    traces: list[Trace],
    names: list[str],
    *,
    burst: int = DEFAULT_BURST,
    name: str | None = None,
    infos: list[dict] | None = None,
) -> Trace:
    """Merge per-tenant traces into one multi-tenant :class:`Trace`.

    All inputs must share GPU count, page size, and base page.  Tenant
    *i*'s pages are shifted by ``i * W`` where ``W`` is the power-of-two
    window from :func:`_window_pages`; merged phase *k* interleaves every
    tenant's phase-*k* records in tenant round-robin bursts of ``burst``
    records (the same stable-lexsort idiom ``TraceBuilder.end_phase``
    uses across GPUs), preserving each tenant's internal order.

    With a single input the merge is the identity: zero shift, original
    names, no tenant metadata — byte-for-byte the solo trace.
    """
    if not traces:
        raise ValueError("nothing to merge")
    if len(traces) != len(names):
        raise ValueError("one name per trace required")
    if len(traces) > MAX_TENANTS:
        raise ValueError(f"at most {MAX_TENANTS} tenants, got {len(traces)}")
    first = traces[0]
    for t in traces[1:]:
        if t.n_gpus != first.n_gpus:
            raise ValueError("tenant traces disagree on GPU count")
        if t.page_size != first.page_size:
            raise ValueError("tenant traces disagree on page size")
        if t.first_page != first.first_page:
            raise ValueError("tenant traces disagree on base page")
    multi = len(traces) > 1
    window = _window_pages(traces) if multi else 0
    base = first.first_page
    shifts = [i * window for i in range(len(traces))]
    total_pages = shifts[-1] + traces[-1].n_pages
    if (base + total_pages) * first.page_size >= (1 << ADDR_BITS):
        raise MemoryError(
            "tenant windows exhaust the 48-bit virtual address range"
        )

    objects: list[ObjectDef] = []
    for i, (trace, tenant_name) in enumerate(zip(traces, names)):
        objects.extend(
            _rebased_objects(
                trace, tenant_name, shifts[i], len(objects), prefix=multi
            )
        )

    n_phases = max(len(t.phases) for t in traces)
    phases: list[PhaseTrace] = []
    for k in range(n_phases):
        parts = [
            (i, t.phases[k])
            for i, t in enumerate(traces)
            if k < len(t.phases)
        ]
        live = [(i, p) for i, p in parts if len(p)]
        if live:
            tenant_parts = [
                np.full(len(p), i, dtype=np.uint8) for i, p in live
            ]
            burst_parts = [
                np.arange(len(p), dtype=np.int64) // burst for _, p in live
            ]
            tenant_all = np.concatenate(tenant_parts)
            order = np.lexsort((tenant_all, np.concatenate(burst_parts)))
            gpu = np.concatenate([p.gpu for _, p in live])[order]
            page = np.concatenate(
                [p.page + shifts[i] for i, p in live]
            )[order]
            write = np.concatenate([p.write for _, p in live])[order]
            weight = np.concatenate([p.weight for _, p in live])[order]
            tenant = tenant_all[order] if multi else None
        else:
            gpu = np.array([], dtype=np.uint8)
            page = np.array([], dtype=np.int64)
            write = np.array([], dtype=np.uint8)
            weight = np.array([], dtype=np.int64)
            tenant = np.array([], dtype=np.uint8) if multi else None
        if multi:
            contributing = "+".join(names[i] for i, _ in parts)
            phase_name = f"p{k}:{contributing}"
            explicit = all(p.explicit for _, p in parts) if parts else True
        else:
            phase_name = parts[0][1].name
            explicit = parts[0][1].explicit
        phases.append(
            PhaseTrace(
                name=phase_name,
                explicit=explicit,
                gpu=gpu,
                page=page,
                write=write,
                weight=weight,
                tenant=tenant,
            )
        )

    tenants = None
    if multi:
        tenants = tuple(
            TenantInfo(
                name=names[i],
                app=(infos[i].get("app", traces[i].name) if infos
                     else traces[i].name),
                index=i,
                seed=(infos[i].get("seed", 0) if infos else 0),
                footprint_mb=(
                    infos[i].get("footprint_mb") if infos else None
                ),
                first_page=base + shifts[i],
                n_pages=traces[i].n_pages,
            )
            for i in range(len(traces))
        )
    return Trace(
        name=name if name is not None else (
            "+".join(names) if multi else first.name
        ),
        n_gpus=first.n_gpus,
        page_size=first.page_size,
        objects=objects,
        phases=phases,
        first_page=base,
        n_pages=total_pages,
        tenants=tenants,
    )


def build_mix_trace(
    mix: TenantMix,
    *,
    n_gpus: int = 4,
    page_size: int = 4096,
    footprint_mb: float | None = None,
    seed: int = 0,
) -> Trace:
    """Build every tenant's solo trace and merge them into one."""
    from repro.workloads.registry import get_workload

    traces: list[Trace] = []
    infos: list[dict] = []
    for index, spec in enumerate(mix.tenants):
        tenant_seed = spec.seed if spec.seed is not None else seed + index
        tenant_mb = (
            spec.footprint_mb if spec.footprint_mb is not None
            else footprint_mb
        )
        traces.append(
            get_workload(
                spec.app,
                n_gpus=n_gpus,
                page_size=page_size,
                footprint_mb=tenant_mb,
                seed=tenant_seed,
                burst=mix.burst,
            )
        )
        infos.append(
            {"app": spec.app, "seed": tenant_seed, "footprint_mb": tenant_mb}
        )
    merged_name = mix.label if len(mix.tenants) > 1 else None
    return merge_traces(
        traces,
        [t.name for t in mix.tenants],
        burst=mix.burst,
        name=merged_name,
        infos=infos,
    )


def single_tenant_trace(
    app: str,
    config=None,
    *,
    n_gpus: int | None = None,
    page_size: int | None = None,
    footprint_mb: float | None = None,
    seed: int = 0,
) -> Trace:
    """Degenerate one-tenant mix: must be bit-identical to the solo trace."""
    gpus = n_gpus if n_gpus is not None else (config.n_gpus if config else 4)
    psize = (
        page_size
        if page_size is not None
        else (config.page_size if config else 4096)
    )
    mix = TenantMix((TenantSpec(name=app.lower(), app=app.lower(), seed=seed),))
    return build_mix_trace(
        mix, n_gpus=gpus, page_size=psize, footprint_mb=footprint_mb,
    )


@lru_cache(maxsize=32)
def _cached_mix_build(
    label: str, n_gpus: int, page_size: int, footprint_mb: float | None,
    seed: int, burst: int,
) -> Trace:
    mix = parse_mix(label)
    if burst != DEFAULT_BURST:
        mix = TenantMix(tenants=mix.tenants, burst=burst)
    return build_mix_trace(
        mix,
        n_gpus=n_gpus,
        page_size=page_size,
        footprint_mb=footprint_mb,
        seed=seed,
    )


def get_mix_workload(
    name: str,
    *,
    n_gpus: int = 4,
    page_size: int = 4096,
    footprint_mb: float | None = None,
    seed: int = 0,
    burst: int = DEFAULT_BURST,
) -> Trace:
    """Build (or fetch from cache) a mix trace from a ``"a+b"`` name.

    This is the registry delegation target: ``get_workload("mm+bfs", ...)``
    routes here, so the harness memo/cache, sweep, serve, and cluster
    layers all handle mixes with no further changes.
    """
    label = parse_mix(name).label
    mb = float(footprint_mb) if footprint_mb is not None else None
    return _cached_mix_build(label, n_gpus, page_size, mb, seed, burst)


def trace_digest(trace: Trace) -> str:
    """Content digest of a trace (records, objects, tenant windows)."""
    from repro.sim.snapshot import trace_prefix_chain

    h = hashlib.sha256(trace_prefix_chain(trace)[-1].encode())
    tenants = getattr(trace, "tenants", None)
    if tenants:
        h.update(
            repr(
                tuple(
                    (t.name, t.app, t.index, t.seed, t.first_page, t.n_pages)
                    for t in tenants
                )
            ).encode()
        )
    return h.hexdigest()
