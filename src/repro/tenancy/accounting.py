"""Per-tenant counter attribution for multi-tenant replays.

:class:`TenancyAccounting` is built once per :class:`~repro.sim.machine.
Machine` from the merged trace's tenant windows.  It precomputes every
namespaced counter key (``tenant.<name>.*``) and a dense page→tenant
index over the trace's page range, so the hot attribution hooks in the
access/fault/migration paths cost one array index plus one
``StatCounters.add`` — and **zero** work on solo traces, where the
machine holds no accounting object at all and stays bit-identical.

The object is deliberately plain data (strings, ints, one list): phase
snapshots pickle the UVM driver by value, and the machine's snapshot
pickler tokenizes the accounting so snapshots stay small and a restored
driver re-binds to the live machine's instance.

Attributed families (aggregate counters are untouched — the tenant keys
are strictly additive):

* ``tenant.<t>.tlb.lookups`` / ``tenant.<t>.tlb.walks`` — L1 probes and
  full page-table walks triggered by the tenant's accesses.
* ``tenant.<t>.fault.page`` / ``tenant.<t>.fault.protection``.
* ``tenant.<t>.driver.occupancy_ns`` — fault-queue service time the
  tenant's faults occupied the driver CPU for.
* ``tenant.<t>.busy_ns.gpu<g>`` — per-GPU clock advance attributed to
  the tenant's records (compute + translation + access + fault stalls).
* ``tenant.<t>.access.local`` / ``.remote`` / ``.host`` — dynamic
  access counts by service class.
* ``tenant.<t>.migration.count`` / ``.bytes``,
  ``tenant.<t>.duplication.count`` / ``.bytes``,
  ``tenant.<t>.eviction.count`` — driver page movement on the tenant's
  pages (migration bandwidth attribution).
"""

from __future__ import annotations


class TenancyAccounting:
    """Page→tenant resolution plus precomputed namespaced counter keys."""

    def __init__(self, trace) -> None:
        tenants = trace.tenants
        if not tenants:
            raise ValueError("trace carries no tenant metadata")
        self.names = tuple(t.name for t in tenants)
        self.base = trace.first_page
        self.page_bytes = trace.page_size
        of_page = [-1] * trace.n_pages
        for i, t in enumerate(tenants):
            start = t.first_page - self.base
            for off in range(start, start + t.n_pages):
                of_page[off] = i
        self._of_page = of_page
        self._span = len(of_page)
        n_gpus = trace.n_gpus
        pre = [f"tenant.{name}." for name in self.names]
        self.lookup_keys = tuple(p + "tlb.lookups" for p in pre)
        self.walk_keys = tuple(p + "tlb.walks" for p in pre)
        self.fault_page_keys = tuple(p + "fault.page" for p in pre)
        self.fault_prot_keys = tuple(p + "fault.protection" for p in pre)
        self.occupancy_keys = tuple(p + "driver.occupancy_ns" for p in pre)
        self.local_keys = tuple(p + "access.local" for p in pre)
        self.remote_keys = tuple(p + "access.remote" for p in pre)
        self.host_keys = tuple(p + "access.host" for p in pre)
        self.busy_keys = tuple(
            tuple(p + f"busy_ns.gpu{g}" for g in range(n_gpus)) for p in pre
        )
        self.migration_count_keys = tuple(p + "migration.count" for p in pre)
        self.migration_bytes_keys = tuple(p + "migration.bytes" for p in pre)
        self.duplication_count_keys = tuple(
            p + "duplication.count" for p in pre
        )
        self.duplication_bytes_keys = tuple(
            p + "duplication.bytes" for p in pre
        )
        self.eviction_keys = tuple(p + "eviction.count" for p in pre)

    def index_of(self, page: int) -> int:
        """Tenant index owning ``page`` (-1 outside every window)."""
        off = page - self.base
        if 0 <= off < self._span:
            return self._of_page[off]
        return -1

    # -- driver-side hooks (page movement) -------------------------------

    def note_migration(self, stats, page: int) -> None:
        ti = self.index_of(page)
        if ti >= 0:
            stats.add(self.migration_count_keys[ti])
            stats.add(self.migration_bytes_keys[ti], self.page_bytes)

    def note_duplication(self, stats, page: int) -> None:
        ti = self.index_of(page)
        if ti >= 0:
            stats.add(self.duplication_count_keys[ti])
            stats.add(self.duplication_bytes_keys[ti], self.page_bytes)

    def note_eviction(self, stats, page: int) -> None:
        ti = self.index_of(page)
        if ti >= 0:
            stats.add(self.eviction_keys[ti])
