"""Fairness analysis for multi-tenant runs (MODEL.md §15).

Definitions — all derived from counters/timings of *one* shared run plus
one solo baseline run per tenant, so every number is deterministic and
golden-pinnable:

* **Tenant shared time** ``T_shared(t)``: the maximum over GPUs of the
  tenant's attributed busy time ``tenant.<t>.busy_ns.gpu<g>`` — the
  wall-clock span the tenant's records occupied its busiest GPU in the
  shared run, *including* contention stalls (TLB walks, fault-queue
  waits behind other tenants' faults).
* **Tenant solo time** ``T_solo(t)``: the summed per-phase GPU busy
  time of the tenant's solo run (``sum(p.gpu_busy_ns)``) — the same
  busiest-GPU yardstick, measured without co-runners.
* **Slowdown** ``S(t) = T_shared(t) / T_solo(t)`` (≥ 1 in practice;
  contention only adds stalls).
* **Weighted speedup** ``WS = Σ_t 1 / S(t)`` — system throughput in
  "solo-run equivalents" (≤ number of tenants; higher is better).
* **Unfairness index** ``U = max_t S(t) / min_t S(t)`` (≥ 1; 1 is
  perfectly fair).
* **Slowdown quartiles**: min / q1 / median / q3 / max over the
  per-tenant slowdowns (linear interpolation, deterministic).
"""

from __future__ import annotations

_TENANT_PREFIX = "tenant."


def solo_time_ns(result) -> float:
    """Busiest-GPU busy time of a solo run (summed per-phase)."""
    total = 0.0
    for phase in result.phases:
        busy = (
            phase["gpu_busy_ns"] if isinstance(phase, dict)
            else phase.gpu_busy_ns
        )
        total += busy
    return total


def tenant_names(counters: dict) -> list[str]:
    """Tenant names present in a counter dict, sorted."""
    names = set()
    for key in counters:
        if key.startswith(_TENANT_PREFIX):
            names.add(key.split(".", 2)[1])
    return sorted(names)


def tenant_counters(counters: dict) -> dict[str, dict[str, float]]:
    """Group ``tenant.<t>.*`` counters by tenant, keys un-namespaced."""
    grouped: dict[str, dict[str, float]] = {}
    for key, value in counters.items():
        if not key.startswith(_TENANT_PREFIX):
            continue
        _, name, rest = key.split(".", 2)
        grouped.setdefault(name, {})[rest] = value
    return {name: grouped[name] for name in sorted(grouped)}

def shared_time_ns(counters: dict, tenant: str) -> float:
    """Max-over-GPUs attributed busy time for one tenant."""
    prefix = f"{_TENANT_PREFIX}{tenant}.busy_ns.gpu"
    busiest = 0.0
    for key, value in counters.items():
        if key.startswith(prefix) and value > busiest:
            busiest = value
    return busiest


def quartiles(values) -> dict[str, float]:
    """min/q1/median/q3/max with linear interpolation (deterministic)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("quartiles of an empty sequence")

    def at(q: float) -> float:
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    return {
        "min": data[0],
        "q1": at(0.25),
        "median": at(0.5),
        "q3": at(0.75),
        "max": data[-1],
    }


def fairness_report(
    solo_ns: dict[str, float], shared_ns: dict[str, float]
) -> dict:
    """Slowdowns, weighted speedup, unfairness and quartiles.

    ``solo_ns`` and ``shared_ns`` map tenant name → time; the key sets
    must match.
    """
    if set(solo_ns) != set(shared_ns):
        raise ValueError(
            f"tenant sets differ: solo={sorted(solo_ns)} "
            f"shared={sorted(shared_ns)}"
        )
    if not solo_ns:
        raise ValueError("no tenants to report on")
    slowdowns = {}
    for name in sorted(solo_ns):
        solo = solo_ns[name]
        if solo <= 0.0:
            raise ValueError(f"non-positive solo time for tenant {name!r}")
        slowdowns[name] = shared_ns[name] / solo
    values = list(slowdowns.values())
    return {
        "slowdown": slowdowns,
        "weighted_speedup": sum(1.0 / s for s in values),
        "unfairness": max(values) / min(values),
        "quartiles": quartiles(values),
    }


def tenant_rollup(counters: dict) -> dict:
    """Per-tenant summary of an aggregated counter dict (sweep rollup).

    Used by ``last_sweep_summary``: for each tenant seen in the sweep's
    merged counters, report faults, TLB pressure, migration bandwidth
    and busiest-GPU time.  Pure aggregation — no baselines needed.
    """
    rollup: dict[str, dict[str, float]] = {}
    for name in tenant_names(counters):
        p = f"{_TENANT_PREFIX}{name}."
        get = counters.get
        rollup[name] = {
            "faults": get(p + "fault.page", 0.0)
            + get(p + "fault.protection", 0.0),
            "tlb_lookups": get(p + "tlb.lookups", 0.0),
            "tlb_walks": get(p + "tlb.walks", 0.0),
            "driver_occupancy_ns": get(p + "driver.occupancy_ns", 0.0),
            "migration_bytes": get(p + "migration.bytes", 0.0),
            "duplication_bytes": get(p + "duplication.bytes", 0.0),
            "busy_ns": shared_time_ns(counters, name),
        }
    return rollup


def mix_fairness(
    config,
    mix_name: str,
    policy: str,
    *,
    footprint_mb: float | None = None,
    seed: int = 0,
    policy_kwargs: dict | None = None,
) -> dict:
    """Run one mix plus its solo baselines and report fairness.

    Solo baselines reuse each tenant's exact seed/footprint, go through
    the memoized :func:`~repro.harness.run_sim`, and are therefore free
    when already swept.  Returns the fairness report extended with the
    raw per-tenant times and counters.
    """
    from repro.harness import run_sim
    from repro.workloads import get_workload

    trace = get_workload(
        mix_name, config, footprint_mb=footprint_mb, seed=seed
    )
    tenants = getattr(trace, "tenants", None)
    if not tenants:
        raise ValueError(
            f"{mix_name!r} is not a multi-tenant mix (need >= 2 tenants)"
        )
    shared = run_sim(
        config, mix_name, policy, footprint_mb=footprint_mb, seed=seed,
        **(policy_kwargs or {}),
    )
    solo_ns: dict[str, float] = {}
    shared_ns: dict[str, float] = {}
    for info in tenants:
        solo = run_sim(
            config, info.app, policy, footprint_mb=info.footprint_mb,
            seed=info.seed, **(policy_kwargs or {}),
        )
        solo_ns[info.name] = solo_time_ns(solo)
        shared_ns[info.name] = shared_time_ns(shared.stats, info.name)
    report = fairness_report(solo_ns, shared_ns)
    report["mix"] = mix_name
    report["policy"] = policy
    report["solo_time_ns"] = solo_ns
    report["shared_time_ns"] = shared_ns
    report["tenant_counters"] = tenant_counters(shared.stats)
    report["total_time_ns"] = shared.total_time_ns
    return report


def publish_fairness_metrics(registry, report: dict) -> None:
    """Surface a fairness report through a metrics registry as gauges."""
    prefix = f"tenancy.{report.get('mix', 'mix')}.{report.get('policy', '')}"
    registry.set_gauge(f"{prefix}.weighted_speedup",
                       report["weighted_speedup"])
    registry.set_gauge(f"{prefix}.unfairness", report["unfairness"])
    for tenant, slowdown in report["slowdown"].items():
        registry.set_gauge(f"{prefix}.slowdown.{tenant}", slowdown)
