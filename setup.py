"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs to build a wheel with this environment's old
setuptools; `python setup.py develop` installs the egg-link directly.
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
