PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench sweep verify verify-faults verify-obs

test:
	$(PYTHON) -m pytest -q

# Fault-model verification: machine-invariant audit plus the
# fastpath-equivalence-under-injection and harness-resilience suites.
verify-faults:
	$(PYTHON) -m pytest tests/faults tests/harness/test_runner_resilience.py -q
	$(PYTHON) -m repro.cli faults --audit

# Observability verification: trace determinism, stat/event agreement
# and exporter round-trips.
verify-obs:
	$(PYTHON) -m pytest tests/obs -q

verify: verify-faults verify-obs

bench-smoke:
	$(PYTHON) scripts/bench_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks -q

sweep:
	$(PYTHON) scripts/sweep.py --jobs 4
