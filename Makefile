PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench sweep

test:
	$(PYTHON) -m pytest -q

bench-smoke:
	$(PYTHON) scripts/bench_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks -q

sweep:
	$(PYTHON) scripts/sweep.py --jobs 4
