PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench sweep verify verify-faults verify-obs \
	verify-serve verify-sim verify-memo verify-chaos verify-cluster \
	verify-tenancy golden-update golden-update-tenancy \
	reproduce reproduce-smoke

test:
	$(PYTHON) -m pytest -q

# Fault-model verification: machine-invariant audit plus the
# fastpath-equivalence-under-injection and harness-resilience suites.
verify-faults:
	$(PYTHON) -m pytest tests/faults tests/harness/test_runner_resilience.py -q
	$(PYTHON) -m repro.cli faults --audit

# Observability verification: trace determinism, stat/event agreement
# and exporter round-trips.
verify-obs:
	$(PYTHON) -m pytest tests/obs -q

# Simulator-wide verification: the tier-1 verify/workload suites, then
# the full phase-boundary invariant sweep, every differential oracle
# lane, and the golden-digest regression over all workloads x policies.
verify-sim:
	$(PYTHON) -m pytest tests/verify tests/workloads/test_table2_conformance.py -q
	$(PYTHON) -m repro.cli verify --jobs 4

# Simulation-service verification: the serve suite (single-flight,
# admission control, lanes/deadlines, HTTP + client) plus the ~30s
# load-generator smoke, which asserts one simulation per identical
# burst and bit-identical served results under the invariant verifier.
verify-serve:
	$(PYTHON) -m pytest tests/serve -q
	$(PYTHON) benchmarks/bench_serve.py --smoke --verify

# Sweep-fast-path verification: snapshot round-trip/corruption tests,
# the memoized-vs-cold differential lane on multi-phase apps, and the
# ~60s memoized-sweep smoke (speedup > 1.5x, zero golden-digest drift).
# The memo lane also runs inside verify-sim's full differential pass.
verify-memo:
	$(PYTHON) -m pytest tests/sim/test_snapshot.py tests/harness/test_memo_runner.py -q
	$(PYTHON) -m repro.cli verify --differential --lanes memo --apps c2d,st --jobs 4
	$(PYTHON) benchmarks/bench_memo.py --smoke

# Durability verification: journal/recovery/breaker suites, then the
# bounded (~2 min) kill-restart-recover soak — 3 seeded chaos cycles
# asserting no acked job is lost and every served result stays
# bit-identical to the pinned goldens — plus the crash-recovery bench
# (zero re-simulation for cache-complete jobs).
verify-chaos:
	$(PYTHON) -m pytest tests/chaos tests/serve/test_journal.py tests/serve/test_recovery.py -q
	REPRO_NO_FSYNC=1 $(PYTHON) -m repro.cli chaos --cycles 3 --seed 0 --apps mm --policies oasis,on_touch
	REPRO_NO_FSYNC=1 $(PYTHON) benchmarks/bench_recovery.py --smoke

# Cluster verification: the ring/store/router/integration suites, then
# the cluster bench smoke — 2 real worker subprocesses behind the
# consistent-hash router, asserting one simulation per identical burst
# cluster-wide, single-node dedup parity on the Zipf mix, and a
# SIGKILL-mid-burst journal steal that loses zero acked jobs (served
# results pinned against the goldens).
verify-cluster:
	$(PYTHON) -m pytest tests/cluster -q
	REPRO_NO_FSYNC=1 $(PYTHON) benchmarks/bench_cluster.py --smoke --chaos

# Multi-tenant verification: the tenancy + TLB suites, the
# degenerate-tenancy differential lane (single-tenant mix must be
# bit-identical to the solo run on every registry app x oasis/grit),
# a bounded 2-tenant interleaver/attribution fuzz, and the fairness
# matrix smoke against the pinned golden digests.
verify-tenancy:
	$(PYTHON) -m pytest tests/tenancy tests/tlb -q
	$(PYTHON) -m repro.cli verify --differential --lanes tenancy --jobs 4
	$(PYTHON) -m repro.cli verify --fuzz --tenancy --budget 120 --seed 0
	$(PYTHON) benchmarks/bench_multitenant.py --smoke

verify: verify-faults verify-obs verify-serve verify-sim verify-memo \
	verify-chaos verify-cluster verify-tenancy

# Re-pin tests/golden/golden.json after an intentional model change;
# commit the file so the review diff names every counter that moved.
golden-update:
	$(PYTHON) -m repro.cli verify --update-golden --jobs 4

# Re-pin tests/golden/golden_tenancy.json (full fairness matrix).
golden-update-tenancy:
	$(PYTHON) benchmarks/bench_multitenant.py --update-golden --jobs 4

bench-smoke:
	$(PYTHON) scripts/bench_smoke.py

# One-command reproduce-all: every paper table/figure through the
# parallel harness into results/artifacts/<run-id>/ (manifest.json,
# metrics.jsonl, summary.json), then results/BENCH_all.json and a
# regenerated EXPERIMENTS.md.  Resumable — rerunning the same profile
# skips recorded experiments and serves cells from the result cache.
reproduce:
	$(PYTHON) scripts/reproduce_all --jobs 4

# Smoke profile for CI: 3 apps (mm,st,bfs), all experiments.
reproduce-smoke:
	$(PYTHON) scripts/reproduce_all --smoke --jobs 2

bench:
	$(PYTHON) -m pytest benchmarks -q

sweep:
	$(PYTHON) scripts/sweep.py --jobs 4
