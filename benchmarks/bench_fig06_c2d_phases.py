"""Fig. 6 — C2D object access patterns across explicit phases.

Paper shape: intermediate objects (Im2col_Output, GEMM_Output) are
shared-rw-mix over the whole execution but private with clean read-only /
write-only roles inside each phase.
"""


def test_fig6_c2d_phase_patterns(experiment):
    result = experiment("fig6")
    rows = result.row_dict()
    for name in ("Im2col_Output", "GEMM_Output"):
        row = rows[name]
        assert row[1] == "shared-rw-mix", name  # overall
        phase_labels = [c for c in row[2:] if c != "-"]
        assert phase_labels, name
        # Within each phase the object is private and single-role.
        for label in phase_labels:
            assert label.startswith("private-"), (name, label)
            assert label.endswith(("read-only", "write-only")), (name, label)
    # Weights are broadcast-read during the GEMM phases.
    gemm_labels = [c for c in rows["C2D_Weights"][2:] if c != "-"]
    assert "shared-read-only" in gemm_labels
