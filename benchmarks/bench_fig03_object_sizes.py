"""Fig. 3 — distribution of object sizes across the applications.

Paper shape: the smallest objects are a single 4 KB page, but most
objects span many pages (which is what makes object-granularity tracking
so much cheaper than page granularity).
"""


def test_fig3_object_size_distribution(experiment):
    result = experiment("fig3")
    buckets = {row[0]: row[1] for row in result.rows}
    total = sum(buckets.values())
    assert total > 0
    # Most objects span multiple pages.
    multi_page = total - buckets.get("<=1", 0)
    assert multi_page / total > 0.5
    # And a meaningful tail of large objects exists.
    assert buckets.get(">1024", 0) > 0
