"""Cluster bench: throughput scaling, cluster-wide dedup, kill-steal.

Drives real :class:`~repro.cluster.supervisor.LocalCluster` instances —
an in-process consistent-hash router fronting ``repro-oasis serve``
subprocesses — through four phases:

1. **Scaling** — the same seeded batch of distinct simulations against
   1, 2 and 4 workers.  Reports requests/s per scale; the speedup
   assertions (>= 1.7x at 2 workers, >= 3x at 4) only arm when the
   machine has enough CPUs to host the workers (``os.cpu_count()``),
   otherwise they are reported as skipped.  The balance assertion —
   every worker at the top scale actually received forwards — always
   arms.
2. **Single-flight burst** — ``--burst`` identical concurrent requests
   through the router must cost exactly **one** simulation
   cluster-wide: one new result file in the shared store, everyone else
   deduplicated at the router or served from the shared tier.
3. **Dedup parity** — the seeded Zipf mixed-traffic stream (the
   ``bench_serve`` shape) through the cluster must perform exactly one
   simulation per *distinct* spec, i.e. clustering does not degrade the
   single-node dedup rate.
4. **Kill-steal** (``--chaos``) — a :class:`~repro.chaos.plan.ChaosPlan`
   worker-kill fires mid-burst through
   :class:`~repro.chaos.cluster.ClusterChaos`: the routed-to worker is
   SIGKILLed, the router steals its journal, and every acknowledged job
   must still produce a result in the shared store — zero acked jobs
   lost.  The phase also pins a served result against the golden file
   and a direct :func:`repro.harness.run_sim`.

Results land in ``results/BENCH_cluster.json``.  ``--smoke`` shrinks
everything for the CI job (set ``REPRO_NO_FSYNC=1`` there).

Usage::

    PYTHONPATH=src REPRO_NO_FSYNC=1 python benchmarks/bench_cluster.py --smoke --chaos
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro import baseline_config  # noqa: E402
from repro.chaos import ChaosPlan, ClusterChaos  # noqa: E402
from repro.chaos.plan import WorkerKill  # noqa: E402
from repro.cluster import LocalCluster  # noqa: E402
from repro.harness import run_sim  # noqa: E402
from repro.harness.diskcache import SharedResultStore, cache_key  # noqa: E402
from repro.serve.client import ServerBusy  # noqa: E402

#: Scaling-phase speedup floors from ISSUE 8, armed only when the host
#: has at least ``workers + 1`` CPUs (the router needs a core too).
SPEEDUP_FLOORS = {2: 1.7, 4: 3.0}


def result_files(cache_dir: Path) -> int:
    return len(list(cache_dir.glob("[0-9a-f][0-9a-f]/*.json")))


def submit_with_backoff(client, app, policy, **kwargs):
    while True:
        try:
            return client.submit(app, policy, **kwargs)
        except ServerBusy as busy:
            time.sleep(min(busy.retry_after_s, 2.0))


def zipf_requests(seed: int, n_requests: int, *, smoke: bool) -> list[tuple]:
    """The seeded Zipf mixed-traffic stream (bench_serve's shape)."""
    if smoke:
        pool = [("mm", policy, 4.0, s)
                for policy in ("on_touch", "oasis") for s in (0, 1)]
    else:
        pool = [(app, policy, 4.0, s)
                for app in ("mm", "st")
                for policy in ("on_touch", "oasis") for s in (0, 1)]
    rng = random.Random(seed)
    rng.shuffle(pool)
    weights = [1.0 / (i + 1) for i in range(len(pool))]
    return [rng.choices(pool, weights=weights)[0] for _ in range(n_requests)]


def phase_scaling(scales: tuple[int, ...], n_requests: int, n_clients: int,
                  seed: int) -> dict:
    """Same batch of distinct simulations per scale; measure requests/s.

    Every scale gets its own state directory and its own seed range, so
    no run can hit another run's shared cache.
    """
    cpus = os.cpu_count() or 1
    report: dict = {"cpus": cpus, "scales": {}}
    baseline_rps: float | None = None
    for index, workers in enumerate(scales):
        specs = [("mm", "on_touch", 4.0, seed + index * 1000 + i)
                 for i in range(n_requests)]
        with LocalCluster(workers=workers) as cluster:
            client_pool = [cluster.client(timeout_s=300.0)
                           for _ in range(n_clients)]
            started = time.monotonic()

            def one(item):
                i, (app, policy, mb, s) = item
                submit_with_backoff(client_pool[i % n_clients], app, policy,
                                    footprint_mb=mb, seed=s)

            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                list(pool.map(one, enumerate(specs)))
            wall = time.monotonic() - started
            stats = cluster.client().health()
            forwards = {
                name: worker["forwarded"]
                for name, worker in stats["workers"].items()
            }
            state_dir = cluster.state_dir
        shutil.rmtree(state_dir, ignore_errors=True)
        rps = n_requests / wall if wall else float("inf")
        floor = SPEEDUP_FLOORS.get(workers)
        gated = cpus < workers + 1
        entry = {
            "workers": workers,
            "wall_s": round(wall, 3),
            "requests_per_s": round(rps, 2),
            "forwards_per_worker": forwards,
            "speedup_floor": floor,
            "speedup_check": "skipped (not enough CPUs)" if gated else None,
        }
        if workers == 1:
            baseline_rps = rps
        elif baseline_rps:
            speedup = rps / baseline_rps
            entry["speedup_vs_1"] = round(speedup, 2)
            if floor is not None and not gated:
                entry["speedup_check"] = "pass" if speedup >= floor else "FAIL"
                if speedup < floor:
                    raise SystemExit(
                        f"scaling FAILED: {workers} workers reached only "
                        f"{speedup:.2f}x over 1 worker (floor {floor}x, "
                        f"{cpus} CPUs)"
                    )
        # Balance always arms: with ring placement over distinct seeds,
        # every worker must have received a share of the forwards.
        idle = [name for name, count in forwards.items() if count == 0]
        if workers > 1 and idle:
            raise SystemExit(
                f"scaling FAILED: workers {idle} received no forwards "
                f"at scale {workers} (placement is not spreading)"
            )
        report["scales"][str(workers)] = entry
        print(f"scaling: {workers} worker(s) -> {rps:.1f} req/s "
              f"({wall:.2f}s wall)"
              + (f", {entry['speedup_vs_1']:.2f}x vs 1"
                 if "speedup_vs_1" in entry else ""))
    return report


def phase_single_flight_burst(workers: int, burst: int) -> dict:
    """Identical concurrent burst -> exactly one simulation cluster-wide."""
    with LocalCluster(workers=workers) as cluster:
        before = result_files(cluster.cache_dir)

        def one(_i):
            return submit_with_backoff(
                cluster.client(timeout_s=300.0), "mm", "on_touch",
                footprint_mb=4.0, lane="interactive",
            )

        with ThreadPoolExecutor(max_workers=min(burst, 32)) as pool:
            results = list(pool.map(one, range(burst)))
        simulations = result_files(cluster.cache_dir) - before
        stats = cluster.client().health()
        state_dir = cluster.state_dir
    shutil.rmtree(state_dir, ignore_errors=True)
    digests = {json.dumps(r.to_dict(), sort_keys=True) for r in results}
    if simulations != 1:
        raise SystemExit(
            f"single-flight FAILED: {burst} identical requests performed "
            f"{simulations} simulations cluster-wide (expected exactly 1)"
        )
    if len(digests) != 1:
        raise SystemExit("single-flight FAILED: responses not bit-identical")
    return {
        "workers": workers,
        "burst": burst,
        "simulations": simulations,
        "deduped": stats["deduped"],
        "store_hits": stats["cache_hits"],
        "bit_identical": True,
    }


def phase_dedup_parity(workers: int, n_requests: int, n_clients: int,
                       seed: int, *, smoke: bool) -> dict:
    """Zipf mix through the cluster: one simulation per distinct spec."""
    requests = zipf_requests(seed, n_requests, smoke=smoke)
    distinct = len(set(requests))
    with LocalCluster(workers=workers) as cluster:
        before = result_files(cluster.cache_dir)
        client_pool = [cluster.client(timeout_s=300.0)
                       for _ in range(n_clients)]

        def one(item):
            i, (app, policy, mb, s) = item
            submit_with_backoff(client_pool[i % n_clients], app, policy,
                                footprint_mb=mb, seed=s)

        started = time.monotonic()
        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            list(pool.map(one, enumerate(requests)))
        wall = time.monotonic() - started
        simulations = result_files(cluster.cache_dir) - before
        stats = cluster.client().health()
        state_dir = cluster.state_dir
    shutil.rmtree(state_dir, ignore_errors=True)
    if simulations != distinct:
        raise SystemExit(
            f"dedup parity FAILED: {n_requests} requests over {distinct} "
            f"distinct specs performed {simulations} simulations "
            "(clustering degraded the dedup rate)"
        )
    return {
        "workers": workers,
        "requests": n_requests,
        "distinct_specs": distinct,
        "simulations": simulations,
        "deduped": stats["deduped"],
        "store_hits": stats["cache_hits"],
        "wall_s": round(wall, 3),
        "requests_per_s": round(n_requests / wall, 2) if wall else None,
    }


def phase_kill_steal(workers: int, n_jobs: int, kill_op: int,
                     seed: int) -> dict:
    """SIGKILL the routed-to worker mid-burst; zero acked jobs lost."""
    config = baseline_config()
    specs = [("mm", "on_touch", 4.0, seed + 5000 + i) for i in range(n_jobs)]
    keys = {
        spec: cache_key(config, spec[0], spec[1], spec[2], spec[3], {})
        for spec in specs
    }
    plan = ChaosPlan(worker_kills=(WorkerKill(op=kill_op),), seed=seed)
    with LocalCluster(workers=workers) as cluster:
        client = cluster.client(timeout_s=300.0)
        with ClusterChaos(plan, cluster.kill_worker) as chaos:
            for app, policy, mb, s in specs:
                # Acked the moment submit_nowait returns: the owner has
                # journaled the accepted record (or, for the op that
                # dies, the failover owner has).
                client.submit_nowait(app, policy, footprint_mb=mb, seed=s)
            fired = chaos.report()
        store = SharedResultStore(cluster.cache_dir)
        deadline = time.monotonic() + 120
        missing = set(specs)
        while missing and time.monotonic() < deadline:
            missing = {s for s in missing if store.load(keys[s]) is None}
            time.sleep(0.1)
        stats = cluster.client().health()

        # Golden pin: a served result (default-footprint, the golden
        # cell) must match the pinned core digest and a direct run.
        from repro.verify.golden import entry_for, golden_key, load_golden

        served = submit_with_backoff(client, "mm", "oasis")
        direct = run_sim(config, "mm", "oasis")
        golden = load_golden()["entries"][golden_key("mm", "oasis")]
        golden_ok = (
            served.to_dict() == direct.to_dict()
            and entry_for(served)["core"] == golden["core"]
        )
        state_dir = cluster.state_dir
    shutil.rmtree(state_dir, ignore_errors=True)
    if missing:
        raise SystemExit(
            f"kill-steal FAILED: {len(missing)} acked job(s) lost after "
            f"killing {list(fired['kills_fired'])}: {sorted(missing)}"
        )
    if not fired["kills_fired"]:
        raise SystemExit("kill-steal FAILED: the chaos kill never fired")
    if not golden_ok:
        raise SystemExit(
            "kill-steal FAILED: served result diverged from the golden "
            "pin or a direct run_sim"
        )
    return {
        "workers": workers,
        "jobs": n_jobs,
        "kill_op": kill_op,
        "killed": fired["kills_fired"],
        "jobs_lost": 0,
        "workers_died": stats["workers_died"],
        "stolen": stats["stolen"],
        "golden_pin": "pass",
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--burst", type=int, default=64,
                        help="identical requests in the burst phase")
    parser.add_argument("--requests", type=int, default=24,
                        help="requests per scaling run / Zipf stream")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads")
    parser.add_argument("--workers", type=int, default=4,
                        help="top cluster size (burst/parity/chaos phases)")
    parser.add_argument("--chaos", action="store_true",
                        help="run the kill-steal phase")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink everything for the CI smoke")
    parser.add_argument("--out", default=None,
                        help="report path (default "
                             "results/BENCH_cluster.json)")
    args = parser.parse_args(argv)
    scales: tuple[int, ...] = (1, 2, 4)
    if args.smoke:
        args.burst = min(args.burst, 16)
        args.requests = min(args.requests, 12)
        args.clients = min(args.clients, 6)
        args.workers = min(args.workers, 2)
        scales = (1, 2)
    scales = tuple(s for s in scales if s <= max(args.workers, 1)) or (1,)

    report: dict = {
        "seed": args.seed,
        "smoke": args.smoke,
        "cpus": os.cpu_count() or 1,
    }
    report["scaling"] = phase_scaling(
        scales, args.requests, args.clients, args.seed
    )
    report["single_flight"] = phase_single_flight_burst(
        args.workers, args.burst
    )
    sf = report["single_flight"]
    print(f"single-flight: {sf['burst']} identical requests over "
          f"{sf['workers']} workers -> {sf['simulations']} simulation "
          f"({sf['deduped']:g} router-deduped, {sf['store_hits']:g} "
          "store hits)")
    report["dedup_parity"] = phase_dedup_parity(
        args.workers, args.requests, args.clients, args.seed,
        smoke=args.smoke,
    )
    parity = report["dedup_parity"]
    print(f"dedup parity: {parity['requests']} Zipf requests over "
          f"{parity['distinct_specs']} distinct specs -> "
          f"{parity['simulations']} simulations (parity with single node)")
    if args.chaos:
        report["kill_steal"] = phase_kill_steal(
            args.workers, 4 if args.smoke else 8,
            2 if args.smoke else 4, args.seed,
        )
        ks = report["kill_steal"]
        print(f"kill-steal: killed {list(ks['killed'])} mid-burst; "
              f"{ks['jobs_lost']} acked jobs lost; golden pin "
              f"{ks['golden_pin']}")
    from benchmarks.conftest import write_bench_artifact

    out = write_bench_artifact("cluster", report, out=args.out)
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
