"""Fig. 2 — performance of uniform page-management policies vs on-touch.

Paper shape: no single policy wins everywhere; Ideal bounds everything;
duplication wins the read-shared apps (MM, MT) while the counter policy
wins the write-shared/random apps (BFS, ST).
"""

from benchmarks.conftest import bench_apps, column


def test_fig2_uniform_policies(experiment):
    result = experiment("fig2")
    rows = result.row_dict()
    ideal = column(result, "ideal")
    counter = column(result, "access_counter")
    dup = column(result, "duplication")
    # Ideal bounds every uniform policy on every app.
    for app, row in rows.items():
        if app == "geomean":
            continue
        assert row[ideal] >= row[counter] - 1e-9, app
        assert row[ideal] >= row[dup] - 1e-9, app
    if bench_apps() is None:
        # Per-app winners match the paper's characterization.
        assert rows["mm"][dup] > rows["mm"][counter]
        assert rows["mt"][dup] > rows["mt"][counter]
        assert rows["st"][counter] > rows["st"][dup]
        assert rows["bfs"][counter] > rows["bfs"][dup]
        # I2C: on-touch (1.0) is the best realizable policy.
        assert rows["i2c"][counter] < 1.0
        # No universal winner (Observation 1): the counter policy loses
        # apps outright, and duplication is beaten by the counter policy
        # elsewhere.  (Deviation from the paper noted in EXPERIMENTS.md:
        # in this substrate duplication never drops below the on-touch
        # baseline itself, but it is still not universally best.)
        assert any(
            r[counter] < 1.0 for a, r in rows.items() if a != "geomean"
        )
        assert any(
            r[counter] > r[dup] for a, r in rows.items() if a != "geomean"
        )
