"""Seeded load generator for the single-flight simulation service.

Drives a real :class:`~repro.serve.http.ServeHttpServer` (in-process,
ephemeral port) through the synchronous client over actual TCP, in
three phases:

1. **Single-flight proof** — a concurrent burst of ``--burst`` (default
   64) *identical* requests.  The service must perform exactly **one**
   simulation: every other request either attaches to the in-flight job
   (dedup) or lands on the warm cache.  The run fails loudly otherwise.
2. **Mixed sweep traffic** — ``--requests`` submissions drawn by a
   seeded RNG from a small (app × policy × footprint × seed) pool with
   Zipf-flavored repetition (the MGSim/MGMark sweep shape: popular
   cells recur), spread over the priority lanes, issued from
   ``--clients`` concurrent threads.  Reports p50/p99 end-to-end
   latency, throughput, dedup hit rate and the number of distinct
   simulations actually computed.
3. **Verification** (``--verify``) — for a sample of specs, the served
   result must be bit-identical to a direct
   :func:`repro.harness.run_sim` call *and* to a run executed under the
   strict phase-boundary invariant verifier.

Results land in ``results/BENCH_serve.json``.  ``--smoke`` shrinks the
mix for the ~30 s CI job.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --verify

The module is import-safe for pytest collection of the benchmarks tree;
the generator only runs under ``__main__``.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro import baseline_config, get_workload  # noqa: E402
from repro.harness import cache_stats, clear_cache, configure, run_sim  # noqa: E402
from repro.serve import SimulationService  # noqa: E402
from repro.serve.client import ServeClient, ServerBusy  # noqa: E402
from repro.serve.http import ServeHttpServer  # noqa: E402

#: The sweep pool the seeded traffic is drawn from.
APPS = ("mm", "st", "i2c")
POLICIES = ("on_touch", "oasis", "access_counter")
FOOTPRINTS = (4.0, 8.0)
SEEDS = (0, 1)
LANES = ("interactive", "batch", "batch", "bulk")  # batch-heavy mix


class ServiceUnderTest:
    """An in-process service + HTTP server on a background event loop."""

    def __init__(self, jobs: int, batch_max: int = 16) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="bench-serve-loop", daemon=True
        )
        self.thread.start()
        self.service = SimulationService(jobs=jobs, batch_max=batch_max)
        self.server = ServeHttpServer(self.service, port=0)
        self._run(self.server.start())

    def _run(self, coro, timeout: float = 120.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def client(self, timeout_s: float = 300.0) -> ServeClient:
        return ServeClient(port=self.server.port, timeout_s=timeout_s)

    def close(self) -> None:
        self._run(self.server.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100])."""
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def phase_single_flight(sut: ServiceUnderTest, burst: int) -> dict:
    """Burst of identical requests -> exactly one simulation."""
    clear_cache()
    before = cache_stats()["misses"]
    client = sut.client()

    def one(_i: int) -> float:
        start = time.monotonic()
        client.submit("mm", "on_touch", footprint_mb=4.0, lane="interactive")
        return time.monotonic() - start

    with ThreadPoolExecutor(max_workers=burst) as pool:
        latencies = list(pool.map(one, range(burst)))
    misses = cache_stats()["misses"] - before
    stats = client.health()
    report = {
        "burst": burst,
        "simulations": misses,
        "deduped": stats["deduped"],
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
    }
    if misses != 1:
        raise SystemExit(
            f"single-flight FAILED: {burst} identical requests performed "
            f"{misses} simulations (expected exactly 1)"
        )
    return report


def phase_mixed_traffic(sut: ServiceUnderTest, n_requests: int,
                        n_clients: int, seed: int) -> dict:
    """Seeded sweep mix; reports latency percentiles and dedup rate."""
    rng = random.Random(seed)
    # Zipf-flavored popularity: cell i drawn with weight 1/(i+1).
    pool = [
        (app, policy, mb, s)
        for app in APPS for policy in POLICIES
        for mb in FOOTPRINTS for s in SEEDS
    ]
    rng.shuffle(pool)
    weights = [1.0 / (i + 1) for i in range(len(pool))]
    requests = [
        (*rng.choices(pool, weights=weights)[0], rng.choice(LANES))
        for _ in range(n_requests)
    ]
    client = sut.client()
    before = cache_stats()["misses"]
    stats_before = client.health()
    latencies: list[float] = []
    lock = threading.Lock()
    started = time.monotonic()

    def one(req) -> None:
        app, policy, mb, s, lane = req
        t0 = time.monotonic()
        while True:
            try:
                client.submit(app, policy, footprint_mb=mb, seed=s, lane=lane)
                break
            except ServerBusy as busy:
                time.sleep(busy.retry_after_s)
        with lock:
            latencies.append(time.monotonic() - t0)

    with ThreadPoolExecutor(max_workers=n_clients) as executor:
        list(executor.map(one, requests))
    wall = time.monotonic() - started
    stats = client.health()
    submitted = stats["submitted"] - stats_before["submitted"]
    deduped = stats["deduped"] - stats_before["deduped"]
    return {
        "requests": n_requests,
        "clients": n_clients,
        "distinct_cells": len(pool),
        "simulations": cache_stats()["misses"] - before,
        "dedup_hits": deduped,
        "dedup_hit_rate": deduped / submitted if submitted else 0.0,
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
        "wall_s": wall,
        "requests_per_s": n_requests / wall if wall else float("inf"),
    }


def phase_verify(sut: ServiceUnderTest, n_samples: int, seed: int) -> dict:
    """Served results == direct run_sim == invariant-verified run."""
    from repro.verify import verified_simulate

    rng = random.Random(seed)
    samples = [
        (rng.choice(APPS), rng.choice(POLICIES), rng.choice(FOOTPRINTS))
        for _ in range(n_samples)
    ]
    client = sut.client()
    config = baseline_config()
    checked = 0
    for app, policy, mb in samples:
        served = client.submit(app, policy, footprint_mb=mb)
        direct = run_sim(config, app, policy, footprint_mb=mb)
        if served.to_dict() != direct.to_dict():
            raise SystemExit(
                f"verify FAILED: served {app}/{policy}@{mb}MB differs "
                "from direct run_sim"
            )
        trace = get_workload(app, config, footprint_mb=mb)
        verified, _verifier = verified_simulate(config, trace, policy)
        if served.to_dict() != verified.to_dict():
            raise SystemExit(
                f"verify FAILED: served {app}/{policy}@{mb}MB differs "
                "from the invariant-verified run"
            )
        checked += 1
    return {"samples": checked, "bit_identical": True, "invariants": "strict"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--burst", type=int, default=64,
                        help="identical requests in the single-flight phase")
    parser.add_argument("--requests", type=int, default=150,
                        help="mixed-traffic submissions")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads")
    parser.add_argument("--jobs", type=int, default=2,
                        help="service worker processes per batch")
    parser.add_argument("--verify", action="store_true",
                        help="check bit-identical + invariant-verified "
                             "results on a spec sample")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink the mix for the ~30s CI smoke")
    parser.add_argument("--out", default=None,
                        help="report path (default "
                             "results/BENCH_serve.json)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 60)
        args.clients = min(args.clients, 8)
        args.jobs = min(args.jobs, 2)

    configure(jobs=args.jobs, disk_cache=False)
    clear_cache()
    sut = ServiceUnderTest(jobs=args.jobs)
    report = {"seed": args.seed, "jobs": args.jobs}
    try:
        report["single_flight"] = phase_single_flight(sut, args.burst)
        sf = report["single_flight"]
        print(f"single-flight: {sf['burst']} identical requests -> "
              f"{sf['simulations']} simulation ({sf['deduped']:g} deduped), "
              f"p99 {sf['p99_ms']:.1f} ms")
        report["mixed"] = phase_mixed_traffic(
            sut, args.requests, args.clients, args.seed
        )
        mixed = report["mixed"]
        print(f"mixed traffic: {mixed['requests']} requests over "
              f"{mixed['distinct_cells']} cells from {mixed['clients']} "
              f"clients in {mixed['wall_s']:.1f}s "
              f"({mixed['requests_per_s']:.1f} req/s)")
        print(f"  p50 {mixed['p50_ms']:.1f} ms  p99 {mixed['p99_ms']:.1f} ms  "
              f"dedup hit rate {100 * mixed['dedup_hit_rate']:.1f}%  "
              f"simulations {mixed['simulations']}")
        if args.verify:
            report["verify"] = phase_verify(sut, 3 if args.smoke else 6,
                                            args.seed)
            print(f"verify: {report['verify']['samples']} sampled specs "
                  "bit-identical to direct run_sim and to the "
                  "invariant-verified run")
    finally:
        sut.close()
    from benchmarks.conftest import write_bench_artifact

    out = write_bench_artifact("serve", report, out=args.out)
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
