"""Fig. 5 — object behaviour and access shares for I2C, MM and ST.

Paper shape: I2C_Output is a private object with ~75% of I2C's accesses;
MM_A/MM_B are shared-read-only with ~80% of MM's accesses; ST's two data
objects are shared-rw-mix.
"""


def test_fig5_object_behavior(experiment):
    result = experiment("fig5")
    rows = {(r[0], r[1]): r for r in result.rows}

    assert rows[("i2c", "I2C_Output")][2] == "private-rw-mix"
    assert rows[("i2c", "I2C_Output")][4] > 60  # % accesses, paper ~75

    assert rows[("mm", "MM_A")][2] == "shared-read-only"
    assert rows[("mm", "MM_B")][2] == "shared-read-only"
    ab_share = rows[("mm", "MM_A")][4] + rows[("mm", "MM_B")][4]
    assert ab_share > 70  # paper ~80

    assert rows[("st", "ST_currData")][2] == "shared-rw-mix"
    assert rows[("st", "ST_newData")][2] == "shared-rw-mix"
