"""Fig. 4 — MT page access patterns over pages and over time.

Paper shape: the first ~half of MT's pages (MT_Input) are entirely
read-only, the next half (MT_Output) entirely write-only, and both stay
stable across all eight execution intervals.
"""


def test_fig4_mt_page_patterns(experiment):
    result = experiment("fig4")
    rows = result.row_dict()
    assert rows["MT_Input"][2] == "shared-read-only"
    assert rows["MT_Output"][2] == "private-write-only"
    # Interval labels: input never writes, output never reads.
    assert "wr" not in rows["MT_Input"][3]
    assert "re" not in rows["MT_Output"][3]
