"""Table II — application list: object counts and memory footprints."""


def test_table2_applications(experiment):
    result = experiment("table2")
    for row in result.rows:
        app, _suite, _pattern, objs_paper, objs_built, mb_paper, mb_built, _ = row
        assert objs_built == objs_paper, app
        assert abs(mb_built - mb_paper) / mb_paper < 0.03, app
