"""Multi-tenant fairness matrix: OASIS vs GRIT vs on-touch on seeded
tenant mixes, golden-pinned.

For every (mix x policy) cell the benchmark runs the shared multi-tenant
simulation plus one solo baseline per tenant (same seed and footprint),
derives the fairness report — per-tenant slowdown, weighted speedup,
unfairness index, slowdown quartiles — and pins the shared run's core
and counter digests in ``tests/golden/golden_tenancy.json`` (zero drift
allowed; ``--update-golden`` re-pins).  The full matrix and metrics land
in ``results/BENCH_multitenant.json``.

Modes:

* ``--smoke`` — two 2-tenant mixes x two policies (the CI job's budget).
* default (full) — three 2-tenant mixes plus the 4-tenant mix, x three
  policies.

Every run uses the Table I baseline config at a 16 MB per-tenant
footprint with mix seed 0, so the digests are deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "golden_tenancy.json"

MIXES = ["mm+bfs", "mm+i2c", "i2c+st", "mm+bfs+i2c+st"]
POLICIES = ["oasis", "grit", "on_touch"]
SMOKE_MIXES = ["mm+bfs", "i2c+st"]
SMOKE_POLICIES = ["oasis", "on_touch"]
FOOTPRINT_MB = 16.0
SEED = 0


def cell_key(mix: str, policy: str) -> str:
    return f"{mix}/{policy}@{FOOTPRINT_MB:g}mb#{SEED}"


def tenant_counters_digest(counters: dict) -> str:
    """Digest over only the ``tenant.*`` namespace of a counter dict."""
    import hashlib

    payload = repr(sorted(
        (k, round(v, 6)) for k, v in counters.items()
        if k.startswith("tenant.")
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


def prewarm(config, mixes, policies, jobs: int) -> None:
    """Fill the result cache for every shared run and solo baseline."""
    from repro.harness import run_sims_parallel
    from repro.workloads import get_workload

    requests = []
    for mix in mixes:
        trace = get_workload(mix, config, footprint_mb=FOOTPRINT_MB,
                             seed=SEED)
        for policy in policies:
            requests.append((config, mix, policy,
                             {"footprint_mb": FOOTPRINT_MB, "seed": SEED}))
            for info in trace.tenants:
                requests.append((config, info.app, policy,
                                 {"footprint_mb": info.footprint_mb,
                                  "seed": info.seed}))
    run_sims_parallel(requests, jobs=jobs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="2 mixes x 2 policies (CI budget)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the prewarm sweep")
    parser.add_argument("--update-golden", action="store_true",
                        dest="update_golden",
                        help="re-pin the golden digests instead of "
                             "checking them")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="matrix JSON path (default "
                             "results/BENCH_multitenant.json)")
    args = parser.parse_args(argv)

    from repro import baseline_config
    from repro.harness import configure, run_sim
    from repro.tenancy import mix_fairness
    from repro.verify.differential import core_digest

    if args.smoke:
        mixes, policies = SMOKE_MIXES, SMOKE_POLICIES
    else:
        mixes, policies = MIXES, POLICIES
    config = baseline_config()
    mode = "smoke" if args.smoke else "full"
    print(f"bench_multitenant [{mode}]: {len(mixes)} mixes x "
          f"{len(policies)} policies, footprint {FOOTPRINT_MB:g} MB, "
          f"seed {SEED}, jobs={args.jobs}")

    configure(disk_cache=False)
    t0 = time.perf_counter()
    if args.jobs > 1:
        prewarm(config, mixes, policies, args.jobs)
    cells: dict[str, dict] = {}
    digests: dict[str, dict] = {}
    for mix in mixes:
        for policy in policies:
            report = mix_fairness(
                config, mix, policy,
                footprint_mb=FOOTPRINT_MB, seed=SEED,
            )
            shared = run_sim(
                config, mix, policy,
                footprint_mb=FOOTPRINT_MB, seed=SEED,
            )
            key = cell_key(mix, policy)
            digests[key] = {
                "core": core_digest(shared),
                "tenant_counters": tenant_counters_digest(shared.stats),
            }
            cells[key] = {
                "mix": mix,
                "policy": policy,
                "slowdown": report["slowdown"],
                "weighted_speedup": report["weighted_speedup"],
                "unfairness": report["unfairness"],
                "quartiles": report["quartiles"],
                "solo_time_ns": report["solo_time_ns"],
                "shared_time_ns": report["shared_time_ns"],
                "total_time_ns": report["total_time_ns"],
            }
            slows = ", ".join(
                f"{t}={s:.2f}x"
                for t, s in sorted(report["slowdown"].items())
            )
            print(f"  {key:<34s} ws={report['weighted_speedup']:.2f} "
                  f"unfair={report['unfairness']:.2f}  {slows}")
    elapsed = time.perf_counter() - t0

    failed = False
    if args.update_golden:
        pinned = {}
        if GOLDEN_PATH.exists():
            pinned = json.loads(GOLDEN_PATH.read_text()).get("entries", {})
        pinned.update(digests)
        GOLDEN_PATH.write_text(json.dumps(
            {"entries": pinned}, indent=2, sort_keys=True
        ) + "\n")
        print(f"  golden: pinned {len(digests)} entries to {GOLDEN_PATH}")
    else:
        entries = {}
        if GOLDEN_PATH.exists():
            entries = json.loads(GOLDEN_PATH.read_text()).get("entries", {})
        missing = drift = 0
        for key, digest in digests.items():
            pin = entries.get(key)
            if pin is None:
                missing += 1
                print(f"  MISSING {key} (pin with --update-golden)")
                continue
            if pin != digest:
                drift += 1
                print(f"  DRIFT {key}")
        print(f"  golden: {len(digests) - missing - drift} entries "
              f"matched, {missing} missing, {drift} drifted")
        failed |= bool(missing or drift)

    payload = {
        "benchmark": "multitenant_fairness",
        "mode": mode,
        "mixes": mixes,
        "policies": policies,
        "footprint_mb": FOOTPRINT_MB,
        "seed": SEED,
        "wall_clock_s": round(elapsed, 3),
        "cells": cells,
        "digests": digests,
        "timestamp": time.time(),
    }
    from benchmarks.conftest import write_bench_artifact

    out = write_bench_artifact("multitenant", payload, out=args.out)
    print(f"  matrix written to {out}")
    print("bench_multitenant: " + ("FAILED" if failed else
                                   f"ok ({elapsed:.1f}s, zero drift)"))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
