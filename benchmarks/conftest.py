"""Benchmark-suite helpers.

Each benchmark regenerates one table/figure of the paper via the
experiment registry, times it with pytest-benchmark, writes the rendered
report to ``results/``, and asserts the paper's qualitative shape.

Environment knobs:

* ``REPRO_BENCH_APPS`` — comma-separated subset of applications (e.g.
  ``mm,st,bfs``) for quick smoke runs; default is all eleven.
* ``REPRO_BENCH_NO_CACHE`` — set to disable the persistent result cache.
* ``REPRO_BENCH_NO_MEMO`` — set to disable the sweep fast path
  (phase-prefix snapshot memoization; on by default, see
  :mod:`repro.sim.sweep`).

Simulation results are memoized per process (see
:mod:`repro.harness.runner`), so benchmarks that share runs — Fig. 2 is a
subset of Fig. 15; Figs. 22/23/24 reuse the GRIT/OASIS runs — only pay
once per session.  They are additionally persisted to the on-disk store
(``results/cache/``), so a re-run of the suite replays every figure from
cache instead of re-simulating; the session summary reports the hit/miss
counts for both levels.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.artifacts.registry import (  # noqa: F401  (re-exported shim)
    BenchExperiment,
    discover_experiments,
    experiment_order,
    normalize_exp_id,
)
from repro.harness import cache_stats, configure, memo_stats, run_experiment

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Kept for path arithmetic; perf-trajectory artifacts (BENCH_*.json)
#: land under ``results/`` via :func:`write_bench_artifact`, NOT here.
REPO_ROOT = RESULTS_DIR.parent


def write_bench_artifact(name: str, payload: dict, out=None) -> Path:
    """Write one ``results/BENCH_<name>.json`` perf-trajectory artifact.

    The single emitter every benchmark and script goes through, so all
    ``BENCH_*.json`` files land in one place (``results/``) with one
    format, and ``scripts/reproduce_all`` can consolidate them into
    ``results/BENCH_all.json``.  ``out`` overrides the full path (used
    by the ``--out`` flags of the standalone benchmark drivers).

    Through 2026-08 these artifacts lived at the repo root
    (``BENCH_fig15.json`` et al.); they moved under ``results/`` when
    the artifact pipeline landed.
    """
    path = Path(out) if out else RESULTS_DIR / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session", autouse=True)
def persistent_result_cache():
    """Route every benchmark's runs through the on-disk result store."""
    use_disk = not os.environ.get("REPRO_BENCH_NO_CACHE", "").strip()
    use_memo = not os.environ.get("REPRO_BENCH_NO_MEMO", "").strip()
    configure(disk_cache=use_disk, memo=use_memo)
    yield
    stats = cache_stats()
    print(
        f"\n[simulation cache: in-process {stats['hits']} hits / "
        f"{stats['misses']} misses, disk {stats['disk_hits']} hits / "
        f"{stats['disk_misses']} misses]"
    )
    memo = memo_stats()
    if memo["enabled"]:
        print(
            f"[sweep fast path: {memo['hits']} snapshot hits / "
            f"{memo['misses']} misses, {memo['prefix_forks']} prefix "
            f"forks, {memo['resumed_phases']} phases resumed]"
        )


def bench_apps() -> list[str] | None:
    raw = os.environ.get("REPRO_BENCH_APPS", "").strip()
    if not raw:
        return None
    return [a.strip().lower() for a in raw.split(",") if a.strip()]


@pytest.fixture
def experiment(benchmark):
    """Run one experiment under the benchmark timer and save its report.

    The returned runner records its wall clock on ``runner.elapsed_s``
    so benchmarks can emit perf-trajectory artifacts (BENCH_*.json).
    """

    def runner(exp_id: str):
        apps = bench_apps()
        t0 = time.perf_counter()
        result = benchmark.pedantic(
            run_experiment, args=(exp_id,), kwargs={"apps": apps},
            rounds=1, iterations=1,
        )
        runner.elapsed_s = time.perf_counter() - t0
        path = result.save(RESULTS_DIR)
        print(f"\n{result.render()}\n[saved to {path}]")
        return result

    runner.elapsed_s = None
    return runner


def geomean_row(result):
    """The geomean row of a speedup-table experiment."""
    return result.row_dict()["geomean"]


def column(result, name):
    return result.headers.index(name)
