"""Ablation: the value of OASIS's individual design choices.

Not a paper figure — this quantifies the design decisions DESIGN.md calls
out, by disabling one OASIS mechanism at a time:

* ``no explicit resets`` — drop the kernel-launch PF-count reset
  (explicit-phase detection, Section V-D); phase-heavy apps must then rely
  on the implicit 8-fault self-correction alone.
* ``no private filter`` — forward *every* fault to the O-Table instead of
  serving host-resident first touches with default on-touch; private
  objects then get mislearned policies.
"""

from benchmarks.conftest import bench_apps
from repro.config import baseline_config
from repro.harness import geomean, run_sim

#: Apps where each mechanism matters most (kept small; full list via
#: REPRO_BENCH_APPS).
DEFAULT_ABLATION_APPS = ["c2d", "mm", "i2c", "st", "lenet"]


def _geomean_speedup(config, apps, **oasis_kwargs):
    speeds = []
    for app in apps:
        base = run_sim(config, app, "on_touch")
        result = run_sim(config, app, "oasis", **oasis_kwargs)
        speeds.append(result.speedup_over(base))
    return geomean(speeds)


def test_ablation_design_choices(benchmark):
    apps = bench_apps() or DEFAULT_ABLATION_APPS
    config = baseline_config()

    def run_ablations():
        return {
            "full": _geomean_speedup(config, apps),
            "no_explicit_resets": _geomean_speedup(
                config, apps, explicit_resets=False
            ),
            "no_private_filter": _geomean_speedup(
                config, apps, private_filter=False
            ),
        }

    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    print("\nOASIS ablation (geomean speedup over on-touch):")
    for name, value in results.items():
        print(f"  {name:<22s} {value:.3f}")

    # Each mechanism must not hurt, and the private filter must help.
    assert results["full"] >= results["no_private_filter"] * 0.999
    assert results["full"] >= results["no_explicit_resets"] * 0.98
    assert results["full"] > 1.0


def test_ablation_otable_capacity(benchmark):
    """Shrinking the O-Table below the per-phase live-object count forces
    LRU re-learning; 16 entries (the paper's choice) should be enough."""
    apps = bench_apps() or ["lenet", "c2d"]

    def run_capacities():
        out = {}
        for entries in (2, 16):
            config = baseline_config(otable_entries=entries)
            out[entries] = _geomean_speedup(config, apps)
        return out

    results = benchmark.pedantic(run_capacities, rounds=1, iterations=1)
    print("\nO-Table capacity ablation (geomean speedup):")
    for entries, value in results.items():
        print(f"  {entries:>3d} entries: {value:.3f}")
    assert results[16] >= results[2] * 0.98
