"""Fig. 19 — OASIS with 2 MB pages.

Paper shape: still a solid win (+43% over 2 MB on-touch) but smaller than
with 4 KB pages, because large pages convert private objects into shared
ones (Fig. 20), and shared-rw-mix objects cannot reach ideal behaviour.
"""

from benchmarks.conftest import bench_apps, geomean_row
from repro.harness import run_experiment


def test_fig19_large_pages(experiment):
    result = experiment("fig19")
    geo_2mb = geomean_row(result)[1]
    assert geo_2mb > 1.0  # paper: +43%

    if bench_apps() is None:
        # The improvement shrinks relative to the 4 KB configuration.
        fig15 = run_experiment("fig15")
        oasis_col = fig15.headers.index("oasis")
        geo_4k = fig15.row_dict()["geomean"][oasis_col]
        assert geo_2mb < geo_4k
