"""Fig. 25 — OASIS under 150% memory oversubscription.

Paper shape: +20% over on-touch — positive, but compressed, because
eviction costs dominate both systems.
"""

from benchmarks.conftest import bench_apps, geomean_row
from repro.harness import run_experiment


def test_fig25_oversubscription(experiment):
    result = experiment("fig25")
    geo = geomean_row(result)[1]
    assert geo > 1.0  # paper: +20%
    if bench_apps() is None:
        # Gains are compressed relative to the fully-resident runs.
        fig15 = run_experiment("fig15")
        oasis_col = fig15.headers.index("oasis")
        resident_geo = fig15.row_dict()["geomean"][oasis_col]
        assert geo < resident_geo
