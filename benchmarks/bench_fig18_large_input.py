"""Fig. 18 — large inputs: 16-GPU footprints on the 4-GPU system.

Paper shape: OASIS keeps a +62% average improvement — larger objects do
not change object behaviour, so object-grain tracking stays effective.
"""

from benchmarks.conftest import geomean_row


def test_fig18_large_inputs(experiment):
    result = experiment("fig18")
    geo = geomean_row(result)[1]
    assert geo > 1.2  # paper: +62%
