"""Fig. 20 — page-type percentages with 4 KB vs 2 MB pages.

Paper shape: the fractions of shared and rw-mix pages rise when 4 KB
pages are consolidated into 2 MB pages.
"""

from benchmarks.conftest import bench_apps


def test_fig20_page_type_percentages(experiment):
    result = experiment("fig20")
    by_size = {"4KB": {}, "2MB": {}}
    for row in result.rows:
        label, app = row[0], row[1]
        by_size[label][app] = row
    apps = list(by_size["4KB"])
    shared_col = result.headers.index("%shared")
    mix_col = result.headers.index("%rw-mix")
    shared4 = sum(by_size["4KB"][a][shared_col] for a in apps) / len(apps)
    shared2 = sum(by_size["2MB"][a][shared_col] for a in apps) / len(apps)
    mix4 = sum(by_size["4KB"][a][mix_col] for a in apps) / len(apps)
    mix2 = sum(by_size["2MB"][a][mix_col] for a in apps) / len(apps)
    if bench_apps() is not None:
        # Small subsets may consist of already-saturated apps (e.g. ST is
        # ~100% shared at 4 KB); only assert non-degeneracy there.
        assert 0 <= shared2 <= 100 and 0 <= mix2 <= 100
        return
    assert shared2 > shared4
    # rw-mix grows in the paper; here several apps are already rw-mix
    # saturated at 4 KB, so only require it not to shrink materially.
    assert mix2 >= mix4 - 2.0
