"""Fig. 21 — sensitivity to initial page placement.

Paper shape: with pages initially distributed round-robin across the GPUs
(instead of on the host), OASIS still gains +57% — it is insensitive to
the initial placement.
"""

from benchmarks.conftest import geomean_row


def test_fig21_distributed_placement(experiment):
    result = experiment("fig21")
    geo = geomean_row(result)[1]
    assert geo > 1.2  # paper: +57%
