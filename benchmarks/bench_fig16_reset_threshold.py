"""Fig. 16 — sensitivity to the O-Table reset threshold.

Paper shape: +55% / +64% / +56% over on-touch for thresholds 4 / 8 / 32 —
the default of 8 is the sweet spot; 4 flip-flops policies, 32 reacts too
slowly to implicit phase changes.
"""

from benchmarks.conftest import geomean_row


def test_fig16_reset_threshold_sensitivity(experiment):
    result = experiment("fig16")
    geo = geomean_row(result)
    t4, t8, t32 = geo[1], geo[2], geo[3]
    assert t8 > 1.0
    # Threshold 8 is within noise of the best choice.  (Note: in this
    # substrate the sensitivity is much weaker than the paper's ±9 points
    # because weighted trace records compress fault streams, making
    # stale-policy episodes brief at any threshold — see EXPERIMENTS.md.)
    assert t8 >= t4 * 0.98
    assert t8 >= t32 * 0.98
    # And the spread is modest (the paper sees ~9 points between them).
    assert max(t4, t8, t32) / min(t4, t8, t32) < 1.35
