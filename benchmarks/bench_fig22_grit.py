"""Fig. 22 — OASIS normalized to GRIT.

Paper shape: +12% over GRIT on average, with far lower complexity (12-bit
per-object entries vs 48-bit per-page records; a 24 B O-Table vs a 352 B
PA-Cache; no neighbour prediction machinery).
"""

from benchmarks.conftest import bench_apps


def test_fig22_oasis_vs_grit(experiment):
    result = experiment("fig22")
    geo = result.row_dict()["geomean"][1]
    assert geo > 1.0  # paper: +12%
    if bench_apps() is None:
        assert geo < 1.35  # the two adaptive schemes are close

    # Metadata-cost comparison reproduced from Section VI-C.
    from repro.core.otable import ENTRY_BITS, OTable
    from repro.policies.grit import METADATA_BITS_PER_PAGE, PA_CACHE_BYTES

    assert ENTRY_BITS == 12
    assert METADATA_BITS_PER_PAGE == 48
    assert OTable().storage_bits // 8 == 24
    assert PA_CACHE_BYTES == 352
