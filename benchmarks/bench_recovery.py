"""Crash-recovery benchmark for the durable serve journal.

Journals a ``--burst`` (default 64) job burst into a service backed by
the write-ahead journal and a shared disk cache, kills the service
mid-flight (:meth:`~repro.serve.service.SimulationService.abandon` — the
in-process ``kill -9``), then measures what recovery actually costs:

* **recovery wall-clock** — the time a successor service spends in
  :meth:`~repro.serve.service.SimulationService.recover` replaying the
  journal and classifying every acked job;
* **re-simulation count** — cache misses incurred *during* recovery.
  Jobs that completed before the kill must recover straight from the
  disk cache with **zero** re-simulation; only the jobs the crash
  genuinely stranded are re-run, and that happens after recovery, on
  the normal dispatch path.

The run fails loudly if recovery itself re-simulates anything, or if
any acked job is missing after the successor service goes idle.

Results land in ``results/BENCH_recovery.json``.  ``--smoke`` shrinks
the burst for the CI job.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke

Import-safe for pytest collection; the driver only runs under
``__main__``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro.harness import runner  # noqa: E402
from repro.harness.runner import cache_stats  # noqa: E402
from repro.serve import SimulationService  # noqa: E402

#: The burst is one cheap app fanned out over seeds, so every job is a
#: distinct simulation (distinct cache key) but each costs well under a
#: second — the interesting time is recovery's, not the simulator's.
BURST_APP = "mm"
BURST_POLICY = "on_touch"
BURST_FOOTPRINT_MB = 4.0


def _burst_specs(burst: int) -> list[dict]:
    return [
        {
            "app": BURST_APP,
            "policy": BURST_POLICY,
            "footprint_mb": BURST_FOOTPRINT_MB,
            "seed": seed,
        }
        for seed in range(burst)
    ]


async def _phase_burst_and_kill(journal_dir: str, burst: int,
                                jobs: int) -> dict:
    """Submit the burst, kill the service once roughly half finished."""
    service = SimulationService(
        jobs=jobs, batch_max=4, journal_dir=journal_dir
    )
    await service.start()
    submitted = []
    for spec in _burst_specs(burst):
        submitted.append(await service.submit(spec))
    target = max(1, burst // 2)
    started = time.monotonic()
    while True:
        done = sum(
            1 for job in submitted if job.status in ("done", "failed")
        )
        if done >= target:
            break
        if time.monotonic() - started > 300.0:
            raise SystemExit("burst phase timed out before the kill point")
        await asyncio.sleep(0.02)
    await service.abandon()
    return {
        "acked": len(submitted),
        "completed_before_kill": sum(
            1 for job in submitted if job.status == "done"
        ),
        "journal": dict(service.journal.stats()),
        "job_ids": [job.id for job in submitted],
    }


async def _phase_recover(journal_dir: str, jobs: int,
                         job_ids: list[str]) -> dict:
    """Measure recovery, then let the stranded jobs finish normally."""
    service = SimulationService(jobs=jobs, journal_dir=journal_dir)
    misses_before = cache_stats()["misses"]
    t0 = time.monotonic()
    await service.start()  # start() runs recover() before dispatching
    recovery_wall_s = time.monotonic() - t0
    resim_during_recovery = cache_stats()["misses"] - misses_before

    # Drain the requeued remainder on the normal dispatch path.
    t1 = time.monotonic()
    while True:
        jobs_state = [service.job(job_id) for job_id in job_ids]
        if all(
            job is not None and job.status in ("done", "failed")
            for job in jobs_state
        ):
            break
        if time.monotonic() - t1 > 300.0:
            raise SystemExit("recovered service never went idle")
        await asyncio.sleep(0.02)
    drain_wall_s = time.monotonic() - t1
    resim_total = cache_stats()["misses"] - misses_before

    lost = [
        job_id for job_id in job_ids if service.job(job_id) is None
    ]
    recovery = dict(service._recovery or {})
    await service.stop()
    return {
        "recovery_wall_s": recovery_wall_s,
        "recovered_cached": recovery.get("recovered_cached", 0),
        "recovered_requeued": recovery.get("recovered_requeued", 0),
        "journal_records": recovery.get("journal_records", 0),
        "resimulated_during_recovery": resim_during_recovery,
        "resimulated_total": resim_total,
        "drain_wall_s": drain_wall_s,
        "lost": lost,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--burst", type=int, default=64,
                        help="jobs journaled before the kill")
    parser.add_argument("--jobs", type=int, default=1,
                        help="service worker processes per batch")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink the burst for the CI smoke job")
    parser.add_argument("--out", default=None,
                        help="report path (default "
                             "results/BENCH_recovery.json)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.burst = min(args.burst, 16)

    state = Path(tempfile.mkdtemp(prefix="repro-bench-recovery-"))
    journal_dir = str(state / "journal")
    prev_disk, prev_jobs = runner._DISK, runner._JOBS
    runner.configure(jobs=args.jobs, cache_dir=str(state / "cache"))
    try:
        burst_report = asyncio.run(
            _phase_burst_and_kill(journal_dir, args.burst, args.jobs)
        )
        print(
            f"burst: {burst_report['acked']} jobs journaled, "
            f"{burst_report['completed_before_kill']} completed, then killed"
        )
        job_ids = burst_report.pop("job_ids")
        runner.clear_cache()  # "new process": memory gone, disk survives
        recover_report = asyncio.run(
            _phase_recover(journal_dir, args.jobs, job_ids)
        )
        print(
            f"recovery: {recover_report['recovery_wall_s'] * 1e3:.1f} ms to "
            f"re-own {burst_report['acked']} jobs "
            f"({recover_report['recovered_cached']} from cache, "
            f"{recover_report['recovered_requeued']} requeued)"
        )
        print(
            f"  re-simulated during recovery: "
            f"{recover_report['resimulated_during_recovery']} (want 0); "
            f"stranded remainder finished in "
            f"{recover_report['drain_wall_s']:.1f}s with "
            f"{recover_report['resimulated_total']} re-simulations"
        )
        if recover_report["resimulated_during_recovery"] != 0:
            raise SystemExit(
                "recovery FAILED: cache-complete jobs were re-simulated "
                f"({recover_report['resimulated_during_recovery']} misses "
                "during recover())"
            )
        if recover_report["lost"]:
            raise SystemExit(
                f"recovery FAILED: acked jobs lost: {recover_report['lost']}"
            )
        report = {
            "burst": args.burst,
            "jobs": args.jobs,
            **{f"burst_{k}": v for k, v in burst_report.items()},
            **recover_report,
        }
    finally:
        runner.clear_cache()
        runner._DISK, runner._JOBS = prev_disk, prev_jobs
    from benchmarks.conftest import write_bench_artifact

    out = write_bench_artifact("recovery", report, out=args.out)
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
