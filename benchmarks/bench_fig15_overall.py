"""Fig. 15 — overall performance of OASIS vs every policy.

Paper headline: OASIS improves over uniform on-touch / counter /
duplication by 64% / 35% / 42% on average, OASIS-InMem is within 2% of
OASIS, and OASIS approaches the Ideal bound on private- and read-only-
dominated applications.
"""

import time

from benchmarks.conftest import (
    bench_apps,
    column,
    geomean_row,
    write_bench_artifact,
)


def _write_trajectory(experiment, cache_before, memo_before):
    """Append-style perf artifact: wall clock + cache/memo accounting.

    Written before the shape asserts so the trajectory records a run
    even when the qualitative check fails.
    """
    from repro.harness import cache_stats, memo_stats

    cache_after, memo_after = cache_stats(), memo_stats()
    payload = {
        "benchmark": "fig15_overall",
        "apps": bench_apps() or "all",
        "wall_clock_s": round(experiment.elapsed_s, 3),
        "cache": {
            name: cache_after[name] - cache_before[name]
            for name in ("hits", "misses", "disk_hits", "disk_misses")
        },
        "memo": {
            "enabled": memo_after["enabled"],
            **{
                name: memo_after[name] - memo_before[name]
                for name in (
                    "hits", "misses", "stores", "snapshot_bytes",
                    "resumed_phases", "prefix_forks",
                )
            },
        },
        "timestamp": time.time(),
    }
    write_bench_artifact("fig15", payload)


def test_fig15_overall_performance(experiment):
    from repro.harness import cache_stats, memo_stats

    cache_before, memo_before = cache_stats(), memo_stats()
    result = experiment("fig15")
    _write_trajectory(experiment, cache_before, memo_before)
    geo = geomean_row(result)
    oasis = geo[column(result, "oasis")]
    inmem = geo[column(result, "oasis_inmem")]
    counter = geo[column(result, "access_counter")]
    dup = geo[column(result, "duplication")]
    ideal = geo[column(result, "ideal")]

    # OASIS beats every realizable uniform policy on average...
    assert oasis > 1.0          # vs on-touch (paper: +64%)
    assert oasis > counter      # (paper: +35%)
    assert oasis > dup          # (paper: +42%)
    # ...and stays below the unrealizable Ideal.
    assert oasis <= ideal
    # OASIS-InMem within a few percent of hardware OASIS (paper: -2%).
    assert abs(inmem - oasis) / oasis < 0.05

    if bench_apps() is None:
        # Substantial average gain over the baseline, in the paper's
        # ballpark (the paper reports +64%).
        assert 1.3 < oasis < 2.2
        rows = result.row_dict()
        oasis_col = column(result, "oasis")
        ideal_col = column(result, "ideal")
        # Near-ideal on duplication/private-friendly single-phase apps.
        for app in ("mm", "mt", "i2c"):
            assert rows[app][oasis_col] > 0.9 * rows[app][ideal_col], app
        # OASIS is never materially below the best uniform policy.
        for app, row in rows.items():
            if app == "geomean":
                continue
            best_uniform = max(
                1.0, row[column(result, "access_counter")],
                row[column(result, "duplication")],
            )
            assert row[oasis_col] > 0.85 * best_uniform, app
