"""Fig. 23 — page policy distribution of L2-TLB-miss requests.

Paper shape: both adaptive schemes move most requests off default
on-touch; GRIT mixes policies per page while OASIS applies object-uniform
policies.
"""

from benchmarks.conftest import bench_apps


def test_fig23_policy_distribution(experiment):
    result = experiment("fig23")
    by_key = {(r[0], r[1]): r for r in result.rows}
    apps = sorted({r[0] for r in result.rows})
    for app in apps:
        for policy in ("grit", "oasis"):
            row = by_key[(app, policy)]
            total = row[2] + row[3] + row[4]
            assert total == 100 or abs(total - 100) < 0.5, (app, policy)
    if bench_apps() is None:
        # Adaptive policies actually adapt: across the suite a substantial
        # share of requests run under counter or duplication.
        for policy in ("grit", "oasis"):
            adapted = sum(
                by_key[(a, policy)][3] + by_key[(a, policy)][4] for a in apps
            ) / len(apps)
            assert adapted > 20.0, policy
