"""Fig. 17 — OASIS on 8- and 16-GPU systems (Table III workload sizes).

Paper shape: the improvement persists as the system scales — +65% with 8
GPUs and +67% with 16 GPUs over the respective on-touch baselines.
"""


def test_fig17_gpu_count_scaling(experiment):
    result = experiment("fig17")
    geo8 = next(r[2] for r in result.rows
                if r[0] == "8 GPUs" and r[1] == "geomean")
    geo16 = next(r[2] for r in result.rows
                 if r[0] == "16 GPUs" and r[1] == "geomean")
    assert geo8 > 1.2
    assert geo16 > 1.2
    # Gains at 16 GPUs comparable to (the paper: slightly above) 8 GPUs.
    assert geo16 > 0.8 * geo8
