"""Table III — memory footprints for 8- and 16-GPU configurations."""


def test_table3_scaled_footprints(experiment):
    result = experiment("table3")
    for row in result.rows:
        app, p8, b8, p16, b16 = row
        assert abs(b8 - p8) / p8 < 0.03, app
        assert abs(b16 - p16) / p16 < 0.03, app
        assert b16 > b8, app
