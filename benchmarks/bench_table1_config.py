"""Table I — baseline multi-GPU configuration."""


def test_table1_baseline_configuration(experiment):
    result = experiment("table1")
    rows = result.row_dict()
    assert rows["GPUs"][1] == 4
    assert rows["Page size"][1] == "4 KB"
    assert rows["Access counter threshold"][1] == 256
    assert "300" in rows["Inter-GPU network"][1]
    assert "32" in rows["CPU-GPU network"][1]
