"""Sweep fast path benchmark: memoized vs cold wall clock + digest drift.

Times the same policy sweep three ways — cold (memo off), populate
(memo on, empty store) and warm (memo on, populated store) — asserts
the warm sweep's speedup over cold, verifies every warm result against
the pinned golden digests (zero drift allowed), and writes the
trajectory to ``results/BENCH_memo.json`` so future re-anchors can see
speed over time.

Modes:

* ``--smoke`` — two multi-phase apps x three policies, serial; finishes
  in about a minute and asserts speedup > 1.5x (the CI job's budget).
* default (full) — the fig15-style matrix (all registry apps x all
  policies); asserts speedup > 5x, the tentpole target.

The result disk cache is disabled throughout so the comparison measures
simulation work, not result-cache hits; snapshots persist in a
throwaway directory so pool workers (``--jobs N``) share them too.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

SMOKE_APPS = ["c2d", "st"]
SMOKE_POLICIES = ["oasis", "on_touch", "grit"]


def _sweep(config, pairs, jobs):
    from repro.harness import last_sweep_summary, run_sims_parallel

    requests = [(config, app, policy) for app, policy in pairs]
    t0 = time.perf_counter()
    results = run_sims_parallel(requests, jobs=jobs)
    return results, time.perf_counter() - t0, last_sweep_summary()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small matrix, ~60s budget, speedup > 1.5x")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per sweep (default serial)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="override the warm-vs-cold floor "
                             "(default 1.5 smoke, 5.0 full)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="trajectory JSON path "
                             "(default results/BENCH_memo.json)")
    args = parser.parse_args(argv)

    from repro import POLICY_FACTORIES, baseline_config
    from repro.harness import clear_cache, configure, runner
    from repro.sim import SimulationResult
    from repro.verify.golden import entry_for, golden_key, load_golden
    from repro.workloads import APPLICATION_ORDER

    if args.smoke:
        apps, policies = SMOKE_APPS, SMOKE_POLICIES
    else:
        apps, policies = list(APPLICATION_ORDER), sorted(POLICY_FACTORIES)
    min_speedup = args.min_speedup if args.min_speedup is not None else (
        1.5 if args.smoke else 5.0
    )
    pairs = [(app, policy) for app in apps for policy in policies]
    config = baseline_config()
    mode = "smoke" if args.smoke else "full"
    print(f"bench_memo [{mode}]: {len(apps)} apps x {len(policies)} "
          f"policies = {len(pairs)} runs, jobs={args.jobs}")

    with tempfile.TemporaryDirectory(prefix="repro-memo-") as memo_dir:
        configure(jobs=args.jobs, disk_cache=False, memo=False)
        clear_cache()
        _, t_cold, _ = _sweep(config, pairs, args.jobs)
        print(f"  cold (no memo):           {t_cold:8.2f}s")

        configure(memo=True, memo_dir=memo_dir)
        clear_cache()
        _, t_pop, pop_summary = _sweep(config, pairs, args.jobs)
        print(f"  populate (memo, empty):   {t_pop:8.2f}s")

        # Drop only the result tier; the snapshot store must carry the
        # warm sweep on its own.
        runner._CACHE.clear()
        results, t_warm, warm_summary = _sweep(config, pairs, args.jobs)
        speedup = t_cold / t_warm if t_warm > 0 else float("inf")
        print(f"  warm (memo, populated):   {t_warm:8.2f}s  "
              f"-> {speedup:.1f}x vs cold")
        configure(memo=False, memo_dir="")

    pop_memo = pop_summary["memo"]
    warm_memo = warm_summary["memo"]
    print(f"  populate: {pop_memo['stores']} snapshots "
          f"({pop_memo['snapshot_bytes'] / 1e6:.1f} MB), "
          f"{pop_memo['prefix_forks']} prefix forks")
    print(f"  warm: {warm_memo['hits']} hits / {warm_memo['misses']} "
          f"misses, {warm_memo['resumed_phases']} phases resumed")

    # Zero digest drift: every warm result must match its pinned entry.
    entries = load_golden().get("entries", {})
    drift: list[str] = []
    checked = missing = 0
    for (app, policy), result in zip(pairs, results):
        if not isinstance(result, SimulationResult):
            drift.append(f"{app}/{policy}: run failed: {result}")
            continue
        pin = entries.get(golden_key(app, policy))
        if pin is None:
            missing += 1
            continue
        checked += 1
        if entry_for(result)["core"] != pin["core"]:
            drift.append(f"{app}/{policy}: core digest drifted")
    print(f"  golden: {checked} entries checked, {missing} unpinned, "
          f"{len(drift)} drifted")

    payload = {
        "benchmark": "memo_sweep",
        "mode": mode,
        "apps": apps,
        "policies": policies,
        "jobs": args.jobs,
        "wall_clock_s": {
            "cold": round(t_cold, 3),
            "populate": round(t_pop, 3),
            "warm": round(t_warm, 3),
        },
        "speedup_vs_cold": round(speedup, 2),
        "memo": {"populate": pop_memo, "warm": warm_memo},
        "golden": {
            "checked": checked,
            "missing": missing,
            "drift": drift,
        },
        "timestamp": time.time(),
    }
    from benchmarks.conftest import write_bench_artifact

    out = write_bench_artifact("memo", payload, out=args.out)
    print(f"  trajectory written to {out}")

    failed = False
    if drift:
        for line in drift:
            print(f"  DRIFT {line}")
        failed = True
    if warm_memo["hits"] == 0:
        print("  FAIL: warm sweep never resumed from a snapshot")
        failed = True
    if speedup < min_speedup:
        print(f"  FAIL: warm speedup {speedup:.2f}x below the "
              f"{min_speedup:.1f}x floor")
        failed = True
    print("bench_memo: " + ("FAILED" if failed else
                            f"ok ({speedup:.1f}x, zero drift)"))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
