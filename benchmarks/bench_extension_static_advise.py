"""Extension: cudaMemAdvise-style static hints vs OASIS.

Not a paper figure — it quantifies the Related Work argument: static
analysis can mark read-mostly objects for duplication, but it cannot see
runtime private/shared behaviour or phase changes, so it captures only
part of OASIS's gain.
"""

from benchmarks.conftest import bench_apps
from repro.config import baseline_config
from repro.harness import geomean, run_sim
from repro.workloads import APPLICATION_ORDER


def test_extension_static_advise(benchmark):
    apps = bench_apps() or list(APPLICATION_ORDER)
    config = baseline_config()

    def run_comparison():
        speeds = {"static_advise": [], "oasis": []}
        for app in apps:
            base = run_sim(config, app, "on_touch")
            for name in speeds:
                speeds[name].append(
                    run_sim(config, app, name).speedup_over(base)
                )
        return {name: geomean(v) for name, v in speeds.items()}

    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print("\nstatic advice vs OASIS (geomean speedup over on-touch):")
    for name, value in results.items():
        print(f"  {name:<16s} {value:.3f}")

    # Static hints help (read-mostly duplication is real)...
    assert results["static_advise"] > 1.0
    # ...but runtime object tracking captures clearly more.
    assert results["oasis"] > results["static_advise"]
