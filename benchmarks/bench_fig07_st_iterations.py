"""Fig. 7 — ST page patterns across iterations (implicit phases).

Paper shape: pages of the two stencil buffers alternate between
read-only and write-only each iteration, in anti-phase — currData starts
read-only while newData starts write-only.
"""


def test_fig7_st_iteration_alternation(experiment):
    result = experiment("fig7")
    curr_rows = [r for r in result.rows if r[0] == "ST_currData"]
    new_rows = [r for r in result.rows if r[0] == "ST_newData"]
    assert curr_rows and new_rows

    def labels(row):
        return row[2].split()

    for row in curr_rows:
        seq = labels(row)
        assert seq[0] == "re"
        # Strict alternation over the shown iterations.
        assert all(a != b for a, b in zip(seq, seq[1:]))
    for row in new_rows:
        seq = labels(row)
        assert seq[0] == "wr"
        assert all(a != b for a, b in zip(seq, seq[1:]))
