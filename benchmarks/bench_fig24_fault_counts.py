"""Fig. 24 — total GPU page faults under GRIT and OASIS.

Paper shape: OASIS services 22% fewer faults than GRIT, because one
object-level decision replaces GRIT's four-faults-per-page learning.
"""


def test_fig24_fault_reduction(experiment):
    result = experiment("fig24")
    total = result.row_dict()["total"]
    grit_faults, oasis_faults, reduction = total[1], total[2], total[3]
    assert grit_faults > 0 and oasis_faults > 0
    # OASIS faults fewer times than GRIT (paper: -22%).
    assert oasis_faults < grit_faults
    assert reduction > 5.0
